"""The serve harness: DRACC suites streamed through the analysis server.

Three experiments, all built on the same plumbing (record a benchmark's
OMPT trace, replay it through in-process tools for the baseline, stream
the same events through a :class:`~repro.serve.server.AnalysisServer`
over the loopback transport):

* :func:`run_serve_suite` — the equivalence run.  Every benchmark's
  served finding set is verified against the in-process baseline via the
  session's :class:`~repro.forensics.ledger.DeliveryLedger`, and the
  delivered findings are assembled into a ``repro-report/1`` payload so
  CI can ``repro diff`` the served suite against the tracked golden
  report.
* :func:`run_serve_bench` — the throughput run.  Events/sec and frame
  latency percentiles over the streamed suite, written to the tracked
  ``BENCH_serve.json`` (``serve-bench/1`` shape, understood by
  ``repro diff --threshold``).
* :func:`run_serve_chaos_campaign` — the certification run.  Seeded
  schedules of serve faults (worker kills, frame drop/dup/reorder) are
  injected while streaming; the campaign asserts **zero crashes** and
  **byte-identical fingerprints** against the unfaulted baseline — the
  delivery guarantee, chaos-certified.
"""

from __future__ import annotations

import io
import json
import os
import random
import time
from typing import Iterable

from ..dracc.registry import (
    DraccBenchmark,
    all_benchmarks,
    buggy_benchmarks,
    clean_benchmarks,
)
from ..events.bus import ToolBus
from ..events.records import (
    Access,
    AllocationEvent,
    DataOp,
    FlushEvent,
    KernelEvent,
    MemcpyEvent,
    SyncEvent,
)
from ..events.trace_io import TraceWriter, read_trace
from ..faults.plan import FaultKind, FaultPlan
from ..forensics.recorder import FlightRecorder, scope as _forensics_scope
from ..forensics.report import SCHEMA, build_summary, finding_entry
from ..openmp.runtime import TargetRuntime
from ..serve import (
    DEFAULT_TOOLS,
    AnalysisServer,
    LoopbackTransport,
    ServeClient,
    ServerConfig,
    register_forensic_ranges,
)

#: Valid ``--suite`` selections for the serve CLI.
SERVE_SUITES = ("buggy", "clean", "all")

#: Serve fault kinds in deterministic generation order (the frozenset in
#: :mod:`repro.faults.plan` has no order; plans must).
SERVE_CHAOS_KINDS = (
    FaultKind.WORKER_KILL,
    FaultKind.FRAME_DROP,
    FaultKind.FRAME_DUP,
    FaultKind.FRAME_REORDER,
)

#: The serve-bench artifact identifier ``repro diff`` sniffs on.
SERVE_BENCH_ARTIFACT = "serve-bench/1"


def _suite(name: str) -> tuple[DraccBenchmark, ...]:
    if name == "buggy":
        return buggy_benchmarks()
    if name == "clean":
        return clean_benchmarks()
    if name == "all":
        return all_benchmarks()
    raise ValueError(
        f"unknown suite {name!r} (valid choices: {', '.join(SERVE_SUITES)})"
    )


def record_trace(bench: DraccBenchmark) -> list:
    """Run ``bench`` on a fresh machine and return its recorded events."""
    rt = TargetRuntime(n_devices=2)
    sink = io.StringIO()
    TraceWriter(sink).attach(rt.machine)
    bench.run(rt)
    sink.seek(0)
    return list(read_trace(sink))


def baseline_fingerprints(
    events: list, tools: Iterable[str] = ("arbalest",)
) -> tuple[tuple[str, str], ...]:
    """In-process fingerprints: the recorded trace through fresh tools.

    Dispatched under a flight recorder whose address index is rebuilt
    from the trace (exactly as each shard worker rebuilds its own), so
    variable attribution — and therefore every fingerprint — matches
    both the served path and the live golden-report path.
    """
    instances = {name: DEFAULT_TOOLS[name]() for name in tools}
    bus = ToolBus()
    for tool in instances.values():
        bus.attach(tool)
    dispatch = {
        Access: bus.publish_access,
        DataOp: bus.publish_data_op,
        MemcpyEvent: bus.publish_memcpy,
        KernelEvent: bus.publish_kernel,
        AllocationEvent: bus.publish_allocation,
        SyncEvent: bus.publish_sync,
        FlushEvent: bus.publish_flush,
    }
    recorder = FlightRecorder()
    with _forensics_scope(recorder):
        for event in events:
            register_forensic_ranges(recorder, event)
            dispatch[type(event)](event)
        bus.flush_batch()
    return tuple(
        sorted(
            (name, finding.fingerprint())
            for name, tool in instances.items()
            for finding in tool.findings
        )
    )


# -- equivalence suite --------------------------------------------------------


def run_serve_suite(
    *,
    suite: str = "buggy",
    n_shards: int = 4,
    engine: str = "columnar",
    tools: Iterable[str] = ("arbalest",),
    queue_cap: int = 256,
    benchmarks: Iterable[DraccBenchmark] | None = None,
) -> dict:
    """Stream a DRACC suite through one server; verify every delivery.

    One server hosts the whole suite — each benchmark is its own session
    (client id = benchmark number), so the run also exercises session
    isolation.  Returns the verdict payload with an embedded
    ``repro-report/1`` document built from the *delivered* findings.
    """
    tools = tuple(tools)
    benches = tuple(benchmarks) if benchmarks is not None else _suite(suite)
    server = AnalysisServer(
        ServerConfig(
            n_shards=n_shards, engine=engine, tools=tools, queue_cap=queue_cap
        )
    )
    sessions: list[dict] = []
    findings: list[dict] = []
    total_events = 0
    for bench in benches:
        events = record_trace(bench)
        total_events += len(events)
        baseline = baseline_fingerprints(events, tools)
        client = ServeClient(
            LoopbackTransport(server), client_id=bench.number
        )
        result = client.stream(events, meta={"benchmark": bench.number})
        session = server.sessions[bench.number]
        verdict = session.ledger.verify_against(baseline)
        sessions.append(
            {
                "benchmark": bench.number,
                "bench_name": bench.name,
                "events": len(events),
                "frames_sent": result.frames_sent,
                "verdict": verdict,
                "result": result.result,
            }
        )
        # The report is built from what the supervisor *delivered*, with
        # the ledger's first-offer-wins dedup — byte-for-byte what went
        # on the wire, in a shape `repro diff` can hold against the
        # in-process golden report.
        seen: set[tuple[str, str]] = set()
        for _shard, tool, finding, count in session.supervisor.findings():
            key = (tool, finding.fingerprint())
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                finding_entry(
                    finding,
                    count,
                    benchmark=bench.number,
                    bench_name=bench.name,
                )
            )
    header = {
        "record": "header",
        "schema": SCHEMA,
        "suite": suite if benchmarks is None else "custom",
        "tools": list(tools),
        "capacity": 0,  # no flight recorder on the serve path
        "engine": engine,
    }
    report = {
        "header": header,
        "findings": findings,
        "summary": build_summary(findings, benchmarks=len(benches)),
    }
    return {
        "suite": suite if benchmarks is None else "custom",
        "engine": engine,
        "n_shards": n_shards,
        "tools": list(tools),
        "benchmarks": len(benches),
        "events": total_events,
        "sessions": sessions,
        "ok": all(s["verdict"]["ok"] for s in sessions),
        "report": report,
    }


# -- throughput bench ---------------------------------------------------------


class _TimedTransport:
    """Transport wrapper recording per-frame round-trip wall latency."""

    def __init__(self, inner):
        self.inner = inner
        self.latencies_us: list[float] = []

    def send(self, data: bytes) -> bytes:
        start = time.perf_counter()
        out = self.inner.send(data)
        self.latencies_us.append((time.perf_counter() - start) * 1e6)
        return out


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_serve_bench(
    *,
    suite: str = "buggy",
    n_shards: int = 4,
    engine: str = "columnar",
    tools: Iterable[str] = ("arbalest",),
    queue_cap: int = 256,
    output: str | None = "BENCH_serve.json",
    benchmarks: Iterable[DraccBenchmark] | None = None,
) -> dict:
    """Measure server throughput and frame latency over a streamed suite.

    Events/sec counts analysis events over total streaming wall time
    (framing, decoding, sharded dispatch and finding streams included);
    the percentiles are per-frame round-trip latencies.  The delivery
    verdict rides along so a "fast but wrong" server can never produce a
    publishable bench.
    """
    tools = tuple(tools)
    benches = tuple(benchmarks) if benchmarks is not None else _suite(suite)
    server = AnalysisServer(
        ServerConfig(
            n_shards=n_shards, engine=engine, tools=tools, queue_cap=queue_cap
        )
    )
    latencies: list[float] = []
    total_events = 0
    total_frames = 0
    stream_seconds = 0.0
    delivery_ok = True
    for bench in benches:
        events = record_trace(bench)
        baseline = baseline_fingerprints(events, tools)
        transport = _TimedTransport(LoopbackTransport(server))
        client = ServeClient(transport, client_id=bench.number)
        start = time.perf_counter()
        result = client.stream(events)
        stream_seconds += time.perf_counter() - start
        latencies.extend(transport.latencies_us)
        total_events += len(events)
        total_frames += result.frames_sent
        if result.fingerprints() != baseline:
            delivery_ok = False
    latencies.sort()
    events_per_sec = total_events / stream_seconds if stream_seconds else 0.0
    payload = {
        "artifact": SERVE_BENCH_ARTIFACT,
        "suite": suite,
        "engine": engine,
        "n_shards": n_shards,
        "tools": list(tools),
        "benchmarks": len(benches),
        "events": total_events,
        "frames": total_frames,
        "stream_seconds": round(stream_seconds, 6),
        "delivery_ok": delivery_ok,
        "summary": {
            "events_per_sec": round(events_per_sec, 2),
            "p50_frame_latency_us": round(_percentile(latencies, 0.50), 2),
            "p99_frame_latency_us": round(_percentile(latencies, 0.99), 2),
            "max_frame_latency_us": round(latencies[-1], 2) if latencies else 0.0,
        },
    }
    if output is not None:
        tmp = output + ".tmp"
        with open(tmp, "w") as sink:
            json.dump(payload, sink, indent=2, sort_keys=True)
            sink.write("\n")
        os.replace(tmp, output)
    return payload


# -- chaos-against-server certification ---------------------------------------


def _serve_plan_seed(campaign_seed: int, schedule: int, bench_number: int) -> int:
    """Stable per-(schedule, benchmark) seed, disjoint from runtime chaos."""
    return random.Random(
        f"{campaign_seed}/serve/{schedule}/{bench_number}"
    ).getrandbits(32)


def run_serve_chaos_campaign(
    *,
    seed: int = 0,
    schedules: int = 3,
    faults_per_schedule: int = 6,
    suite: str = "buggy",
    n_shards: int = 4,
    engine: str = "columnar",
    tools: Iterable[str] = ("arbalest",),
    queue_cap: int = 256,
    benchmarks: Iterable[DraccBenchmark] | None = None,
) -> dict:
    """Certify the delivery guarantee under seeded serve-fault schedules.

    Every (schedule, benchmark) pair gets a fresh server, a plan drawn
    from :data:`SERVE_CHAOS_KINDS`, worker kills installed on the
    supervisor's delivery-attempt schedule (alternating before/after the
    journal write), and frame faults installed on the loopback transport.
    Unlike runtime chaos, there is no "bounded divergence" tier here:
    *every* faulted run must reproduce the baseline fingerprints exactly.
    """
    tools = tuple(tools)
    benches = tuple(benchmarks) if benchmarks is not None else _suite(suite)

    traces = {bench.number: record_trace(bench) for bench in benches}
    baselines = {
        number: baseline_fingerprints(events, tools)
        for number, events in traces.items()
    }

    crashes: list[dict] = []
    mismatches: list[dict] = []
    schedule_log: list[dict] = []
    injected_counts: dict[str, int] = {}
    worker_restarts = 0
    retransmits = 0
    backoff_ticks = 0
    dup_frames = 0
    shed_frames = 0
    nacks = 0
    degraded_sessions = 0
    kills_triggered = 0

    for schedule in range(schedules):
        for bench in benches:
            plan = FaultPlan.generate(
                _serve_plan_seed(seed, schedule, bench.number),
                n_faults=faults_per_schedule,
                kinds=SERVE_CHAOS_KINDS,
            )
            run_id = {"schedule": schedule, "benchmark": bench.number}
            for fault in plan.faults:
                schedule_log.append({**run_id, **fault.to_json()})
                injected_counts[fault.kind.value] = (
                    injected_counts.get(fault.kind.value, 0) + 1
                )
            server = AnalysisServer(
                ServerConfig(
                    n_shards=n_shards,
                    engine=engine,
                    tools=tools,
                    queue_cap=queue_cap,
                )
            )
            # Worker kills target delivery-attempt occurrences; phases
            # alternate so both sides of the journal write are hit.
            session = server.session(bench.number)
            kills = plan.by_kind(FaultKind.WORKER_KILL)
            for position, fault in enumerate(kills):
                session.supervisor.kill_schedule[fault.index + 1] = (
                    "pre" if position % 2 == 0 else "post"
                )
            transport = LoopbackTransport(server, plan)
            client = ServeClient(transport, client_id=bench.number)
            try:
                result = client.stream(traces[bench.number])
            except BaseException as exc:  # a crash fails the campaign, not us
                crashes.append(
                    {**run_id, "error": f"{type(exc).__name__}: {exc}"}
                )
                continue
            supervisor = session.supervisor
            kills_triggered += len(kills) - len(supervisor.kill_schedule)
            worker_restarts += supervisor.worker_restarts
            retransmits += result.retransmits
            backoff_ticks += result.backoff_ticks
            dup_frames += result.result.get("dup_frames", 0)
            shed_frames += result.result.get("shed_frames", 0)
            nacks += result.result.get("nacks_sent", 0)
            degraded_sessions += bool(result.result.get("degraded"))
            if result.fingerprints() != baselines[bench.number]:
                mismatches.append(
                    {
                        **run_id,
                        "baseline": [list(k) for k in baselines[bench.number]],
                        "served": [list(k) for k in result.fingerprints()],
                    }
                )

    payload = {
        "seed": seed,
        "schedules": schedules,
        "faults_per_schedule": faults_per_schedule,
        "suite": suite if benchmarks is None else "custom",
        "engine": engine,
        "n_shards": n_shards,
        "target": "serve",
        "benchmarks": len(benches),
        "runs": schedules * len(benches),
        "crashes": crashes,
        "fingerprint_mismatches": mismatches,
        "injected_faults": dict(sorted(injected_counts.items())),
        "injected_total": sum(injected_counts.values()),
        "schedule_log": schedule_log,
        "worker_kills_triggered": kills_triggered,
        "worker_restarts": worker_restarts,
        "retransmits": retransmits,
        "backoff_ticks": backoff_ticks,
        "dup_frames": dup_frames,
        "shed_frames": shed_frames,
        "nacks": nacks,
        "degraded_sessions": degraded_sessions,
    }
    payload["ok"] = not crashes and not mismatches
    return payload


def run_serve_chaos(
    *,
    seed: int = 0,
    schedules: int = 3,
    faults_per_schedule: int = 6,
    suite: str = "buggy",
    n_shards: int = 4,
    engine: str = "columnar",
    output: str = "BENCH_serve_chaos.json",
) -> dict:
    """Run the serve chaos campaign and write its tracked JSON artifact."""
    payload = run_serve_chaos_campaign(
        seed=seed,
        schedules=schedules,
        faults_per_schedule=faults_per_schedule,
        suite=suite,
        n_shards=n_shards,
        engine=engine,
    )
    tmp = output + ".tmp"
    with open(tmp, "w") as sink:
        json.dump(payload, sink, indent=2, sort_keys=True)
        sink.write("\n")
    os.replace(tmp, output)
    return payload
