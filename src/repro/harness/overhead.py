"""Figures 8 and 9: time and space overhead on the SPEC ACCEL workloads.

For every workload × tool configuration we build a fresh machine, attach
the tool, run the workload, and record

* wall-clock execution time (Fig 8 — reported as a slowdown factor over
  the tool-free *native* run of the same simulation), and
* the tool's live shadow/analysis bytes plus the machine's application
  bytes (Fig 9 — reported as total memory footprint).

What transfers from the paper is the *relative shape* across tools sharing
one event stream, not absolute numbers: our "native" is a simulator, not a
Xeon+Volta node, and our Valgrind model is event-driven rather than a
dynamic binary translator (the paper's largest single overhead source).
EXPERIMENTS.md discusses where the shapes agree and where the substitution
makes them diverge.
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable

from ..observe.history import append_history, run_meta
from ..observe.prof import DEFAULT_STRIDE, Governor, Profiler
from ..observe.prof import scope as _prof_scope
from ..openmp.runtime import TargetRuntime
from ..specaccel.workloads import WORKLOADS, Workload
from .precision import TOOL_FACTORIES, TOOL_ORDER
from .tables import render_ratio_chart, render_table

#: Fig 8/9 column order: native baseline first, then the tools, then the
#: static-assisted detector (ARBALEST pruned by each workload twin's
#: SafetyCertificate — the staticlint speedup the tracked bench records),
#: then ARBALEST with the forensics flight recorder active (the tracked
#: recorder-overhead number: it must stay within a few percent of plain
#: arbalest, which ``repro diff`` gates on), then ARBALEST with the
#: continuous profiler sampling (governor at default budget — the tracked
#: profiler-tax number, gated at a couple percent over plain arbalest).
CONFIGS = ("native", *TOOL_ORDER, "arbalest-cert", "arbalest-rec", "arbalest-prof")

#: Event engines the harness can drive (``ToolBus`` dispatch modes).
ENGINES = ("scalar", "columnar")

#: The ``large`` preset is sized for the columnar engine: the full matrix
#: under the scalar engine does not finish in CI time, so it runs the
#: detector configurations only (EXPERIMENTS.md documents the measured gap).
LARGE_CONFIGS = ("native", "arbalest", "arbalest-cert")


@dataclass
class Measurement:
    workload: str
    config: str
    seconds: float
    app_bytes: int
    shadow_bytes: int
    checksum: object

    @property
    def total_bytes(self) -> int:
        return self.app_bytes + self.shadow_bytes


@dataclass
class OverheadResult:
    preset: str
    engine: str = "scalar"
    measurements: list[Measurement] = field(default_factory=list)
    #: The shared continuous profiler from the ``arbalest-prof`` cells
    #: (``None`` when that configuration was not measured).
    profiler: Profiler | None = None

    def get(self, workload: str, config: str) -> Measurement:
        for m in self.measurements:
            if m.workload == workload and m.config == config:
                return m
        workloads = sorted({m.workload for m in self.measurements})
        configs = sorted({m.config for m in self.measurements})
        raise KeyError(
            f"no measurement for workload {workload!r} under config {config!r} "
            f"(measured workloads: {', '.join(workloads) or 'none'}; "
            f"configs: {', '.join(configs) or 'none'})"
        )

    @property
    def configs(self) -> list[str]:
        """The configurations actually measured, in canonical order."""
        present = {m.config for m in self.measurements}
        return [c for c in CONFIGS if c in present]

    def slowdown(self, workload: str, config: str) -> float:
        native = self.get(workload, "native").seconds
        return self.get(workload, config).seconds / max(native, 1e-9)

    def space_ratio(self, workload: str, config: str) -> float:
        native = self.get(workload, "native").total_bytes
        return self.get(workload, config).total_bytes / max(native, 1)

    # -- rendering -----------------------------------------------------------

    def render_time_table(self) -> str:
        configs = self.configs
        rows = []
        for w in sorted({m.workload for m in self.measurements}):
            rows.append(
                [w]
                + [f"{self.slowdown(w, c):.2f}x" for c in configs]
            )
        return render_table(
            ["Workload", *configs],
            rows,
            title=(
                "Fig 8: time overhead (slowdown vs native, "
                f"preset={self.preset}, engine={self.engine})"
            ),
        )

    def render_space_table(self) -> str:
        configs = self.configs
        rows = []
        for w in sorted({m.workload for m in self.measurements}):
            rows.append(
                [w]
                + [
                    f"{self.get(w, c).total_bytes / 1024:.0f}K"
                    for c in configs
                ]
            )
        return render_table(
            ["Workload", *configs],
            rows,
            title=f"Fig 9: memory usage (app + shadow, preset={self.preset})",
        )

    def render_chart(self, workload: str) -> str:
        configs = self.configs
        values = [self.slowdown(workload, c) for c in configs]
        return render_ratio_chart(configs, values)

    def checksums_consistent(self) -> bool:
        """Every configuration must compute the same answer."""
        for w in {m.workload for m in self.measurements}:
            values = {repr(m.checksum) for m in self.measurements if m.workload == w}
            if len(values) != 1:
                return False
        return True


def measure_one(
    workload: Workload,
    config: str,
    preset: str,
    *,
    repetitions: int = 1,
    engine: str = "scalar",
    profiler: Profiler | None = None,
) -> Measurement:
    """One (workload, tool) cell: fresh machine, attach, run, account."""
    best = None
    for _ in range(max(1, repetitions)):
        rt = TargetRuntime(n_devices=1, engine=engine)
        tool = None
        recorder = None
        run_scope = nullcontext()
        if config == "arbalest-prof":
            from ..core.detector import Arbalest

            tool = Arbalest().attach(rt.machine)
            # Continuous profiling exactly as production runs it: governor
            # armed at the default budget.  The caller may share one
            # profiler across cells (the aggregate feeds the flamegraph).
            if profiler is None:
                profiler = Profiler(
                    stride=DEFAULT_STRIDE, governor=Governor()
                )
            profiler.set_context(benchmark=workload.name, phase="host")
            run_scope = _prof_scope(profiler)
        elif config == "arbalest-cert":
            from ..core.detector import Arbalest
            from ..staticlint import spec_certificates

            # Workloads whose twin certifies nothing (postencil, polbm:
            # pointer swaps) run at plain-arbalest cost — honestly.
            certificate = spec_certificates().get(workload.name)
            tool = Arbalest(certificate=certificate).attach(rt.machine)
        elif config == "arbalest-rec":
            from ..core.detector import Arbalest
            from ..forensics import FlightRecorder
            from ..forensics import recorder as _forensics

            tool = Arbalest().attach(rt.machine)
            recorder = FlightRecorder()
            run_scope = _forensics.scope(recorder)
        elif config != "native":
            tool = TOOL_FACTORIES[config]().attach(rt.machine)
        # Collector pauses are the dominant run-to-run jitter at these
        # millisecond scales; park the GC for the timed window so the
        # native/instrumented ratio measures the tools, not the allocator.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            with run_scope:
                checksum = workload.run(rt, preset)
                rt.finalize()
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        app_bytes = sum(d.allocator.peak_bytes for d in rt.machine.devices.values())
        shadow = tool.shadow_bytes() if tool is not None else 0
        if recorder is not None:
            shadow += recorder.shadow_bytes()
        m = Measurement(
            workload=workload.name,
            config=config,
            seconds=elapsed,
            app_bytes=app_bytes,
            shadow_bytes=shadow,
            checksum=checksum,
        )
        if best is None or m.seconds < best.seconds:
            best = m
    assert best is not None
    return best


def run_overhead_comparison(
    preset: str = "test",
    *,
    workloads: Iterable[Workload] = WORKLOADS,
    configs: Iterable[str] | None = None,
    repetitions: int = 3,
    engine: str = "scalar",
) -> OverheadResult:
    """The whole Fig 8 + Fig 9 experiment."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if configs is None:
        configs = LARGE_CONFIGS if preset == "large" else CONFIGS
    result = OverheadResult(preset=preset, engine=engine)
    configs = tuple(configs)
    if "arbalest-prof" in configs:
        # One profiler across all arbalest-prof cells: the governor keeps
        # its adapted stride between workloads (continuous profiling, not
        # per-run profiling) and the aggregate folded stacks become the
        # bench flamegraph.
        result.profiler = Profiler(stride=DEFAULT_STRIDE, governor=Governor())
    workloads = tuple(workloads)
    # Warm up numpy/runtime code paths so 'native' isn't charged for imports.
    # Run the *measured* preset: warming a different one leaves preset-sized
    # allocations and code paths cold and skews the first column.
    for w in workloads:
        rt = TargetRuntime(n_devices=1, engine=engine)
        w.run(rt, preset)
        rt.finalize()
    for w in workloads:
        for config in configs:
            result.measurements.append(
                measure_one(
                    w,
                    config,
                    preset,
                    repetitions=repetitions,
                    engine=engine,
                    profiler=result.profiler,
                )
            )
    return result


def bench_payload(result: OverheadResult, *, repetitions: int) -> dict:
    """The Fig 8/9 numbers as a plain JSON-serializable dict.

    This is the tracked benchmark format (``BENCH_fig8.json``): per
    workload and configuration the wall-clock seconds, memory split, and
    the slowdown over native, plus a summary block for quick comparison
    across commits.
    """
    workloads = sorted({m.workload for m in result.measurements})
    configs = result.configs
    payload: dict = {
        "preset": result.preset,
        "engine": result.engine,
        "repetitions": repetitions,
        "configs": configs,
        "checksums_consistent": result.checksums_consistent(),
        "workloads": {},
    }
    for w in workloads:
        row: dict = {}
        for c in configs:
            m = result.get(w, c)
            row[c] = {
                "seconds": round(m.seconds, 6),
                "app_bytes": m.app_bytes,
                "shadow_bytes": m.shadow_bytes,
                "slowdown": round(result.slowdown(w, c), 3),
            }
        payload["workloads"][w] = row
    arb = [result.slowdown(w, "arbalest") for w in workloads]
    cert = [result.slowdown(w, "arbalest-cert") for w in workloads]
    arb_geomean = float(np_geomean(arb))
    payload["summary"] = {
        "arbalest_slowdown_geomean": round(arb_geomean, 3),
        "arbalest_slowdown_max": round(max(arb), 3),
        "arbalest_cert_slowdown_geomean": round(float(np_geomean(cert)), 3),
        "arbalest_cert_slowdown_max": round(max(cert), 3),
    }
    if "arbalest-rec" in configs:
        rec = [result.slowdown(w, "arbalest-rec") for w in workloads]
        rec_geomean = float(np_geomean(rec))
        payload["summary"].update(
            {
                "arbalest_rec_slowdown_geomean": round(rec_geomean, 3),
                "arbalest_rec_slowdown_max": round(max(rec), 3),
                # The recorder's own cost, as a ratio over plain arbalest:
                # the <=1.05 acceptance bar lives on this number.
                "recorder_overhead_geomean": round(
                    rec_geomean / max(arb_geomean, 1e-9), 3
                ),
            }
        )
    if "arbalest-prof" in configs:
        prof = [result.slowdown(w, "arbalest-prof") for w in workloads]
        prof_geomean = float(np_geomean(prof))
        payload["summary"].update(
            {
                "arbalest_prof_slowdown_geomean": round(prof_geomean, 3),
                "arbalest_prof_slowdown_max": round(max(prof), 3),
                # The continuous profiler's tax over plain arbalest — the
                # governor's job is to keep this within a couple percent.
                "profiler_overhead_geomean": round(
                    prof_geomean / max(arb_geomean, 1e-9), 3
                ),
            }
        )
        if result.profiler is not None:
            payload["profiler"] = result.profiler.stats()
    payload["meta"] = run_meta(
        engine=result.engine, preset=result.preset, reps=repetitions
    )
    return payload


def np_geomean(values: list[float]) -> float:
    """Geometric mean without pulling numpy into the JSON path."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


def run_bench(
    preset: str = "train",
    *,
    repetitions: int = 3,
    output: str = "BENCH_fig8.json",
    telemetry: bool = False,
    engine: str = "scalar",
    history: str | None = None,
    flamegraph: str | None = None,
) -> dict:
    """Run the Fig-8 matrix and write the tracked ``BENCH_fig8.json``.

    ``telemetry=True`` measures the whole matrix inside an active telemetry
    scope (event-ordinal clock) and embeds the metric snapshot under a
    ``"telemetry"`` key — the timings then include the instrumentation
    cost, so only compare slowdowns among runs with the same setting.

    ``history`` appends this run to the bench-history ledger (the
    ``repro sentinel`` input); ``flamegraph`` writes the aggregated
    ``arbalest-prof`` profile as a self-contained flamegraph HTML.
    """
    out_dir = os.path.dirname(os.path.abspath(output))
    if not os.path.isdir(out_dir):
        # Fail before the minutes-long measurement, not after it.
        raise FileNotFoundError(f"output directory does not exist: {out_dir}")
    if telemetry:
        from ..telemetry import Telemetry, scope

        # Metrics only: a span per event over the whole matrix would not
        # fit in memory, and the snapshot is what the tracked file embeds.
        registry = Telemetry(record_spans=False)
        with scope(registry):
            result = run_overhead_comparison(
                preset, repetitions=repetitions, engine=engine
            )
        payload = bench_payload(result, repetitions=repetitions)
        payload["telemetry"] = registry.snapshot()
    else:
        result = run_overhead_comparison(
            preset, repetitions=repetitions, engine=engine
        )
        payload = bench_payload(result, repetitions=repetitions)
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    if flamegraph is not None and result.profiler is not None:
        from ..observe.flame import write_flamegraph

        write_flamegraph(
            flamegraph,
            result.profiler.folded(),
            title=f"repro bench {preset}/{engine} · arbalest-prof",
        )
    if history is not None:
        append_history(history, payload)
    return payload
