"""``repro profile``: run one workload with full telemetry and export it.

The profile harness is the observability counterpart of the overhead
harness: instead of *one* end-to-end number per (workload, tool) cell it
answers *where the time goes* — how much of a run is the simulated runtime
(directives, transfers), the ToolBus fan-out, and the detector's own
analysis — plus every internal counter the stack maintains (VSM transition
edges, lookup-cache hits, quarantine events, per-tool findings).

Artifacts:

* ``trace.json`` — Chrome Trace Event JSON; open in ``chrome://tracing``
  or https://ui.perfetto.dev;
* an optional metrics snapshot JSON (counters/gauges/histograms);
* a per-phase self-time table on stdout (rendered by the CLI).

With the default event-ordinal clock both artifacts are *byte-identical*
across repeated runs of the same target — they are diffable CI artifacts,
not just local profiles.  ``clock="wall"`` trades that determinism for real
seconds.
"""

from __future__ import annotations

import json

from ..core.detector import Arbalest
from ..dracc.registry import all_benchmarks, get as dracc_get
from ..openmp.runtime import TargetRuntime
from ..specaccel.workloads import WORKLOADS, workload as workload_get
from ..telemetry import Telemetry, chrome_trace, scope, self_times

#: Valid ``--suite`` selections for the profile CLI.
PROFILE_SUITES = ("dracc", "specaccel")

#: Valid ``--clock`` selections.
PROFILE_CLOCKS = ("ordinal", "wall")


def run_profile(
    *,
    suite: str = "dracc",
    benchmark: int = 22,
    workload: str = "postencil",
    preset: str = "test",
    clock: str = "ordinal",
    output: str = "trace.json",
    metrics_output: str | None = None,
) -> dict:
    """Run one target with telemetry on; write the trace; return the payload.

    ``suite="dracc"`` profiles DRACC benchmark ``benchmark`` on a
    two-accelerator machine; ``suite="specaccel"`` profiles SPEC ACCEL
    workload ``workload`` at ``preset``.  Both run under an attached
    :class:`~repro.core.detector.Arbalest`, which is the configuration
    whose breakdown the optimisation roadmap needs.
    """
    if suite not in PROFILE_SUITES:
        raise ValueError(
            f"unknown suite {suite!r} (valid choices: {', '.join(PROFILE_SUITES)})"
        )
    if clock not in PROFILE_CLOCKS:
        raise ValueError(
            f"unknown clock {clock!r} (valid choices: {', '.join(PROFILE_CLOCKS)})"
        )

    telemetry = Telemetry(wall_clock=(clock == "wall"))
    with scope(telemetry):
        if suite == "dracc":
            bench = dracc_get(benchmark)  # KeyError -> caller's 1..56 message
            target = bench.name
            rt = TargetRuntime(n_devices=2)
            detector = Arbalest().attach(rt.machine)
            bench.run(rt)
        else:
            w = workload_get(workload)
            target = f"{w.spec_id}.{w.name}"
            rt = TargetRuntime(n_devices=1)
            detector = Arbalest().attach(rt.machine)
            w.run(rt, preset)
            rt.finalize()
        # Final internal-state gauges: surfaced here so the snapshot carries
        # the run's closing statistics, not just mid-run samples.
        hits, misses = detector.mapping_lookup_stats()
        telemetry.gauge("detector.lookup_hits", hits)
        telemetry.gauge("detector.lookup_misses", misses)
        for key, value in detector.degradation_stats().items():
            telemetry.gauge(f"detector.{key}", value)
        telemetry.gauge("detector.shadow_bytes", detector.shadow_bytes())

    trace = chrome_trace(telemetry)
    with open(output, "w") as sink:
        json.dump(trace, sink, indent=2, sort_keys=True)
        sink.write("\n")
    snapshot = telemetry.snapshot()
    if metrics_output is not None:
        with open(metrics_output, "w") as sink:
            json.dump(snapshot, sink, indent=2, sort_keys=True)
            sink.write("\n")

    return {
        "suite": suite,
        "target": target,
        "clock": clock,
        "output": output,
        "metrics_output": metrics_output,
        "span_count": len(telemetry.spans),
        "span_layers": sorted({s.cat for s in telemetry.spans}),
        "self_times": self_times(telemetry),
        "snapshot": snapshot,
        "findings": len(detector.findings),
        "telemetry": telemetry,
    }


def inventory() -> dict:
    """Machine-readable benchmark/workload inventory (``repro list --json``)."""
    return {
        "dracc": [
            {
                "number": b.number,
                "name": b.name,
                "buggy": b.is_buggy,
                "effect": b.expected_effect.name if b.expected_effect else None,
                "description": b.description,
                "tags": list(b.tags),
            }
            for b in all_benchmarks()
        ],
        "specaccel": [
            {
                "name": w.name,
                "spec_id": w.spec_id,
                "description": w.description,
                "presets": ["test", "train", "ref"],
            }
            for w in WORKLOADS
        ],
    }
