"""Experiment harnesses regenerating the paper's evaluation artifacts."""

from .casestudy import CaseStudyResult, run_case_study
from .chaos import (
    CHAOS_SUITES,
    MAX_EVENT_FAULT_DIVERGENCE,
    run_chaos,
    run_chaos_campaign,
)
from .overhead import (
    CONFIGS,
    ENGINES,
    LARGE_CONFIGS,
    Measurement,
    OverheadResult,
    bench_payload,
    measure_one,
    run_bench,
    run_overhead_comparison,
)
from .hybrid import (
    MODES,
    HybridResult,
    HybridRow,
    run_benchmark_hybrid,
    run_hybrid_comparison,
)
from .profile import PROFILE_CLOCKS, PROFILE_SUITES, inventory, run_profile
from .report import REPORT_SUITES, run_report
from .synth import (
    SynthMatrixResult,
    SynthProgramRow,
    run_synth_matrix,
    run_synth_program,
)
from .serve import (
    SERVE_BENCH_ARTIFACT,
    SERVE_CHAOS_KINDS,
    SERVE_SUITES,
    run_serve_bench,
    run_serve_chaos,
    run_serve_chaos_campaign,
    run_serve_suite,
)
from .precision import (
    EXPECTED_DETECTIONS,
    TOOL_FACTORIES,
    TOOL_ORDER,
    BenchmarkResult,
    PrecisionResult,
    run_benchmark_under_tools,
    run_precision_comparison,
)
from .tables import render_ratio_chart, render_table

__all__ = [
    "run_precision_comparison",
    "run_benchmark_under_tools",
    "PrecisionResult",
    "BenchmarkResult",
    "TOOL_ORDER",
    "TOOL_FACTORIES",
    "EXPECTED_DETECTIONS",
    "run_overhead_comparison",
    "run_bench",
    "bench_payload",
    "measure_one",
    "OverheadResult",
    "Measurement",
    "CONFIGS",
    "ENGINES",
    "LARGE_CONFIGS",
    "run_hybrid_comparison",
    "run_benchmark_hybrid",
    "HybridResult",
    "HybridRow",
    "MODES",
    "run_case_study",
    "CaseStudyResult",
    "run_chaos",
    "run_chaos_campaign",
    "run_profile",
    "run_report",
    "REPORT_SUITES",
    "inventory",
    "PROFILE_SUITES",
    "PROFILE_CLOCKS",
    "CHAOS_SUITES",
    "MAX_EVENT_FAULT_DIVERGENCE",
    "run_serve_suite",
    "run_serve_bench",
    "run_serve_chaos",
    "run_serve_chaos_campaign",
    "SERVE_SUITES",
    "SERVE_CHAOS_KINDS",
    "SERVE_BENCH_ARTIFACT",
    "run_synth_matrix",
    "run_synth_program",
    "SynthMatrixResult",
    "SynthProgramRow",
    "render_table",
    "render_ratio_chart",
]
