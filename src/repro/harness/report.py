"""The forensics report harness: DRACC suites under the flight recorder.

``repro report`` runs a DRACC suite with a :class:`FlightRecorder` active
and the requested tools attached, then assembles the deduped findings —
each carrying its provenance timeline and natural-language explanation —
into the ``repro-report/1`` payload that :mod:`repro.forensics.report`
renders as text, JSON-lines, or HTML and that ``repro diff`` compares
across runs.

Every benchmark gets a *fresh* machine and a *fresh* recorder, so one
benchmark's timeline can never bleed into another's and the artifact is a
pure function of (suite, tools, capacity) — byte-identical across runs.
"""

from __future__ import annotations

from typing import Iterable

from ..dracc.registry import (
    DraccBenchmark,
    all_benchmarks,
    buggy_benchmarks,
    clean_benchmarks,
)
from ..forensics import DEFAULT_CAPACITY, FlightRecorder
from ..forensics import recorder as _recorder
from ..forensics.report import SCHEMA, build_summary, finding_entry
from ..openmp.runtime import TargetRuntime
from .precision import TOOL_FACTORIES

#: Valid ``--suite`` selections for the report CLI.
REPORT_SUITES = ("buggy", "clean", "all")


def _suite(name: str) -> tuple[DraccBenchmark, ...]:
    if name == "buggy":
        return buggy_benchmarks()
    if name == "clean":
        return clean_benchmarks()
    if name == "all":
        return all_benchmarks()
    raise ValueError(
        f"unknown suite {name!r} (valid choices: {', '.join(REPORT_SUITES)})"
    )


def run_report(
    *,
    suite: str = "buggy",
    tools: Iterable[str] = ("arbalest",),
    capacity: int = DEFAULT_CAPACITY,
    benchmarks: Iterable[DraccBenchmark] | None = None,
    engine: str = "scalar",
) -> dict:
    """Run ``suite`` under the recorder and return the report payload.

    Findings are ordered by (benchmark registry order, requested tool
    order, report order within the tool) — fully deterministic.
    """
    tools = tuple(tools)
    unknown = [t for t in tools if t not in TOOL_FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown tool(s) {', '.join(unknown)} "
            f"(valid choices: {', '.join(sorted(TOOL_FACTORIES))})"
        )
    benches = tuple(benchmarks) if benchmarks is not None else _suite(suite)
    findings: list[dict] = []
    for bench in benches:
        recorder = FlightRecorder(capacity)
        rt = TargetRuntime(n_devices=2, engine=engine)
        attached = {
            name: TOOL_FACTORIES[name]().attach(rt.machine) for name in tools
        }
        with _recorder.scope(recorder):
            bench.run(rt)
        for name in tools:
            for finding, count in attached[name].findings_with_counts():
                findings.append(
                    finding_entry(
                        finding,
                        count,
                        benchmark=bench.number,
                        bench_name=bench.name,
                    )
                )
    header = {
        "record": "header",
        "schema": SCHEMA,
        "suite": suite if benchmarks is None else "custom",
        "tools": list(tools),
        "capacity": capacity,
        # Findings must be engine-independent; recording the engine in the
        # header lets CI diff a columnar report against the scalar golden
        # and treat any drift as a regression.
        "engine": engine,
    }
    return {
        "header": header,
        "findings": findings,
        "summary": build_summary(findings, benchmarks=len(benches)),
    }
