"""Minimal ascii table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Fixed-width ascii table, markdown-ish, right-padded."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    sep = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append(sep)
    out += [line(r) for r in cells[1:]]
    return "\n".join(out)


def render_ratio_chart(
    labels: Sequence[str], values: Sequence[float], *, width: int = 50, unit: str = "x"
) -> str:
    """Horizontal bar chart for slowdown/overhead figures."""
    peak = max(values) if values else 1.0
    lines = []
    label_w = max(len(l) for l in labels) if labels else 0
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)
