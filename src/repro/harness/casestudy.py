"""§VI.D + Figures 6/7: the 503.postencil case study.

Runs the SPEC ACCEL 1.2 buggy stencil under ARBALEST and renders the
resulting bug report in the template of Fig. 7, then re-runs the fixed
variant to show a clean bill of health.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.detector import Arbalest
from ..openmp.runtime import TargetRuntime
from ..specaccel.postencil import output_checksum, run_postencil
from ..tools.findings import FindingKind


@dataclass
class CaseStudyResult:
    buggy_checksum: float
    fixed_checksum: float
    report_text: str
    stale_detected: bool
    clean_on_fixed: bool

    @property
    def reproduced(self) -> bool:
        """Fig 7 reproduced: stale access on v1.2, nothing on the fix."""
        return self.stale_detected and self.clean_on_fixed

    def render(self) -> str:
        lines = [
            "503.postencil case study (SPEC ACCEL 1.2 pointer-swap bug)",
            "",
            "--- buggy run (v1.2) " + "-" * 40,
            self.report_text or "(no report!)",
            "",
            f"buggy output checksum: {self.buggy_checksum:.6f}",
            f"fixed output checksum: {self.fixed_checksum:.6f}",
            "",
            "--- fixed run " + "-" * 47,
            "no data mapping issue reported"
            if self.clean_on_fixed
            else "UNEXPECTED findings on the fixed version",
        ]
        return "\n".join(lines)


def run_case_study(preset: str = "test", *, pid: int = 104822) -> CaseStudyResult:
    """Run buggy + fixed 503.postencil under ARBALEST; see module docstring."""
    # Buggy v1.2.
    rt = TargetRuntime(n_devices=1)
    detector = Arbalest().attach(rt.machine)
    result = run_postencil(rt, preset, buggy=True)
    buggy_checksum = output_checksum(rt, result)
    rt.finalize()
    stale = [
        r
        for r in detector.bug_reports
        if r.finding.kind in (FindingKind.USD, FindingKind.UUM)
    ]
    report_text = "\n".join(r.render(pid=pid) for r in stale)

    # Fixed.
    rt2 = TargetRuntime(n_devices=1)
    detector2 = Arbalest().attach(rt2.machine)
    result2 = run_postencil(rt2, preset, buggy=False)
    fixed_checksum = output_checksum(rt2, result2)
    rt2.finalize()

    return CaseStudyResult(
        buggy_checksum=buggy_checksum,
        fixed_checksum=fixed_checksum,
        report_text=report_text,
        stale_detected=bool(stale),
        clean_on_fixed=not detector2.mapping_issue_findings(),
    )
