"""Synthesis validation matrix: is the synthesized mapping actually good?

:func:`repro.staticlint.synth.synthesize` claims its output is a *minimal
correct* data mapping.  This harness checks both words the honest way, per
corpus program (40 clean DRACC twins + the SPEC twins + the affine demo):

* **correct** — the synthesized twin executes on the simulated runtime
  with ARBALEST attached and must report **zero** mapping issues, on the
  scalar *and* the columnar event engine (the two dispatch paths share
  semantics but not code), and every instrumented host read must observe
  byte-identical values to the hand-written mapping's run;
* **minimal** — the synthesized mapping must move **no more** bytes over
  the simulated interconnect than the hand-written one (measured from the
  runtime's transfer counters, not estimated), and across the corpus at
  least one program must move strictly fewer.

The matrix lands in ``BENCH_synth.json`` (artifact ``synth-bench/1``),
which ``repro diff`` gates: synthesized bytes growing, a clean verdict
lost, or value equivalence lost on any program is a regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.detector import Arbalest
from ..ompsan.interp import TwinRun, run_twin
from ..openmp.runtime import TargetRuntime
from ..staticlint import lint
from ..staticlint.synth import SynthResult, synth_suite_programs, synthesize

#: Both event engines; the synthesized mapping must be clean on each.
ENGINES = ("scalar", "columnar")


@dataclass
class SynthProgramRow:
    """One corpus program through the validation matrix."""

    name: str
    lint_clean: bool
    baseline: TwinRun
    synth: TwinRun
    #: engine -> mapping-issue finding count for the synthesized twin.
    findings: dict[str, int]
    clauses: int
    affine_clauses: int
    fallback_loops: int

    @property
    def clean(self) -> bool:
        return all(n == 0 for n in self.findings.values())

    @property
    def equivalent(self) -> bool:
        return self.baseline.host_reads == self.synth.host_reads

    @property
    def bytes_ok(self) -> bool:
        return self.synth.transfer_bytes <= self.baseline.transfer_bytes

    @property
    def strict_saving(self) -> bool:
        return self.synth.transfer_bytes < self.baseline.transfer_bytes

    @property
    def ok(self) -> bool:
        return self.clean and self.equivalent and self.bytes_ok


@dataclass
class SynthMatrixResult:
    rows: list[SynthProgramRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            all(r.ok for r in self.rows)
            and any(r.strict_saving for r in self.rows)
        )

    def failures(self) -> list[str]:
        out = []
        for r in self.rows:
            if not r.clean:
                bad = [e for e, n in r.findings.items() if n]
                out.append(f"{r.name}: findings on {', '.join(bad)}")
            if not r.equivalent:
                out.append(f"{r.name}: host reads diverged")
            if not r.bytes_ok:
                out.append(
                    f"{r.name}: synthesized mapping moves more bytes "
                    f"({r.synth.transfer_bytes} > {r.baseline.transfer_bytes})"
                )
        if not any(r.strict_saving for r in self.rows):
            out.append("no program moves strictly fewer bytes than hand-written")
        return out

    def to_json(self) -> dict:
        programs = {
            r.name: {
                "lint_clean": r.lint_clean,
                "baseline_bytes": r.baseline.transfer_bytes,
                "synth_bytes": r.synth.transfer_bytes,
                "clean_scalar": r.findings.get("scalar", 0) == 0,
                "clean_columnar": r.findings.get("columnar", 0) == 0,
                "equivalent": r.equivalent,
                "clauses": r.clauses,
                "affine_clauses": r.affine_clauses,
                "fallback_loops": r.fallback_loops,
            }
            for r in self.rows
        }
        return {
            "artifact": "synth-bench/1",
            "programs": programs,
            "summary": {
                "programs": len(self.rows),
                "clean": sum(r.clean for r in self.rows),
                "equivalent": sum(r.equivalent for r in self.rows),
                "strict_savings": sum(r.strict_saving for r in self.rows),
                "baseline_bytes": sum(
                    r.baseline.transfer_bytes for r in self.rows
                ),
                "synth_bytes": sum(r.synth.transfer_bytes for r in self.rows),
                "ok": self.ok,
            },
        }

    def render(self) -> str:
        lines = []
        for r in self.rows:
            verdict = "ok" if r.ok else "FAIL"
            saving = (
                f" (saves {r.baseline.transfer_bytes - r.synth.transfer_bytes}B)"
                if r.strict_saving
                else ""
            )
            lines.append(
                f"{r.name}: {r.clauses} clause(s), "
                f"{r.synth.transfer_bytes}B vs {r.baseline.transfer_bytes}B "
                f"hand-written{saving} [{verdict}]"
            )
        s = self.to_json()["summary"]
        lines.append(
            f"\n{s['programs']} program(s): {s['clean']} clean on both "
            f"engines, {s['equivalent']} value-equivalent, "
            f"{s['strict_savings']} strictly cheaper; "
            f"{s['baseline_bytes']}B -> {s['synth_bytes']}B total"
        )
        for failure in self.failures():
            lines.append(f"FAIL: {failure}")
        return "\n".join(lines)


def _detected_run(program, engine: str) -> tuple[TwinRun, int]:
    """Run a twin with ARBALEST attached; (outcome, mapping issue count)."""
    rt = TargetRuntime(n_devices=2, engine=engine)
    tool = Arbalest().attach(rt.machine)
    run = run_twin(program, rt)
    return run, len(tool.mapping_issue_findings())


def run_synth_program(name: str, program) -> SynthProgramRow:
    """One program through synthesis + the full validation matrix."""
    result: SynthResult = synthesize(program)
    baseline = run_twin(program)
    findings: dict[str, int] = {}
    synth_run: TwinRun | None = None
    for engine in ENGINES:
        run, issues = _detected_run(result.program, engine)
        findings[engine] = issues
        synth_run = run  # engines agree on transfers; keep the last
    assert synth_run is not None
    return SynthProgramRow(
        name=name,
        lint_clean=lint(program).clean,
        baseline=baseline,
        synth=synth_run,
        findings=findings,
        clauses=len(result.clauses),
        affine_clauses=result.affine_clauses,
        fallback_loops=result.fallback_loops,
    )


def run_synth_matrix() -> SynthMatrixResult:
    """The full corpus through the validation matrix."""
    result = SynthMatrixResult()
    for name, program in sorted(synth_suite_programs().items()):
        result.rows.append(run_synth_program(name, program))
    return result
