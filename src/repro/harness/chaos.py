"""Chaos campaigns: seeded fault schedules swept over the DRACC suites.

A campaign answers the robustness question the happy-path harnesses cannot:
does the whole stack — simulated runtime, tool bus, ARBALEST — *degrade
gracefully* under adverse runtime behaviour, or does it fall over?  For
every (schedule, benchmark) pair a fresh machine is built with a
deterministic :class:`~repro.faults.injector.FaultInjector`, the benchmark
runs to completion, and the campaign asserts the three recovery guarantees:

1. **Zero crashes.**  No uncaught exception escapes any faulted run, ever.
2. **Transparent faults are transparent.**  Device-alloc OOM, transfer
   failures, latency spikes, and spurious resets are fully recovered below
   the event layer (retry-with-backoff, rollback/replay, checkpoint/
   restore), so runs that received *only* those faults must produce
   byte-identical findings to the un-faulted baseline — ARBALEST's
   precision and recall on the un-faulted event subset is unchanged.
3. **Bounded precision loss.**  Runs whose OMPT callback stream *was*
   perturbed (dropped/duplicated/reordered events) may diverge — the
   detector's view of the mapping lifecycle is wrong by construction — but
   divergence is quarantined (never a crash, invariants hold) and its
   frequency is reported and bounded.

The campaign result is a JSON payload (tracked as ``BENCH_chaos.json``)
containing the full schedule log of every injected fault, so a failure is
reproducible from the seed alone.
"""

from __future__ import annotations

import json
import os
import random
from typing import Iterable

from ..core.detector import Arbalest
from ..dracc.registry import (
    DraccBenchmark,
    all_benchmarks,
    buggy_benchmarks,
    clean_benchmarks,
)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..openmp.runtime import TargetRuntime

#: Valid ``--suite`` selections for the chaos CLI.
CHAOS_SUITES = ("all", "buggy", "clean")

#: Upper bound asserted on the fraction of event-faulted runs whose
#: findings diverge from baseline ("bounded precision loss").
MAX_EVENT_FAULT_DIVERGENCE = 0.5


def _suite(name: str) -> tuple[DraccBenchmark, ...]:
    if name == "buggy":
        return buggy_benchmarks()
    if name == "clean":
        return clean_benchmarks()
    if name == "all":
        return all_benchmarks()
    raise ValueError(
        f"unknown suite {name!r} (valid choices: {', '.join(CHAOS_SUITES)})"
    )


def _plan_seed(campaign_seed: int, schedule: int, bench_number: int) -> int:
    """Stable per-(schedule, benchmark) seed derivation."""
    return random.Random(
        f"{campaign_seed}/{schedule}/{bench_number}"
    ).getrandbits(32)


def _signature(detector: Arbalest) -> tuple[str, ...]:
    """Canonical, order-insensitive form of a run's findings."""
    return tuple(
        sorted(
            f"{f.kind.value}@{f.location.file}:{f.location.line}:{f.variable}"
            for f in detector.findings
        )
    )


def _run_one(
    bench: DraccBenchmark,
    injector: FaultInjector | None,
    engine: str = "scalar",
) -> tuple[Arbalest, BaseException | None]:
    """One benchmark under ARBALEST, optionally faulted; never raises."""
    rt = TargetRuntime(n_devices=2, faults=injector, engine=engine)
    detector = Arbalest().attach(rt.machine)
    try:
        bench.run(rt)
        return detector, None
    except BaseException as exc:  # a crash is a campaign failure, not ours
        return detector, exc


def run_chaos_campaign(
    *,
    seed: int = 0,
    schedules: int = 3,
    faults_per_schedule: int = 6,
    suite: str = "all",
    benchmarks: Iterable[DraccBenchmark] | None = None,
    engine: str = "scalar",
) -> dict:
    """Sweep ``schedules`` sampled fault schedules over the DRACC suite.

    Returns the JSON-ready campaign payload (see module docstring).  Fully
    deterministic in ``seed`` and the parameters: two invocations produce
    identical payloads, including every schedule log entry.  ``engine``
    selects the :class:`~repro.events.bus.ToolBus` dispatch strategy for
    every run, baseline and faulted alike — the recovery guarantees must
    hold under both, which is why CI runs the campaign under each.
    """
    benches = tuple(benchmarks) if benchmarks is not None else _suite(suite)

    # Un-faulted baseline, once per benchmark.
    baseline: dict[int, tuple[tuple[str, ...], bool]] = {}
    for bench in benches:
        detector, error = _run_one(bench, None, engine)
        if error is not None:  # pragma: no cover - the seed suite is healthy
            raise error
        baseline[bench.number] = (
            _signature(detector),
            bool(detector.mapping_issue_findings()),
        )

    crashes: list[dict] = []
    invariant_violations: list[dict] = []
    transparent_divergences: list[dict] = []
    schedule_log: list[dict] = []
    warnings: list[str] = []
    injected_counts: dict[str, int] = {}
    detection_mismatches: list[dict] = []
    quarantined_events = 0
    backoff_ticks = 0
    latency_ticks = 0
    transparent_runs = 0
    event_faulted_runs = 0
    event_faulted_diverged = 0

    for schedule in range(schedules):
        for bench in benches:
            plan = FaultPlan.generate(
                _plan_seed(seed, schedule, bench.number),
                n_faults=faults_per_schedule,
            )
            injector = FaultInjector(plan)
            detector, error = _run_one(bench, injector, engine)
            run_id = {"schedule": schedule, "benchmark": bench.number}
            for record in injector.log:
                schedule_log.append({**run_id, **record.to_json()})
                injected_counts[record.kind.value] = (
                    injected_counts.get(record.kind.value, 0) + 1
                )
            quarantined_events += len(detector.quarantine_log)
            backoff_ticks += injector.stats.get("backoff_ticks", 0)
            latency_ticks += injector.stats.get("latency_ticks", 0)
            if error is not None:
                crashes.append(
                    {**run_id, "error": f"{type(error).__name__}: {error}"}
                )
                continue
            problems = detector.check_invariants()
            if problems:
                invariant_violations.append({**run_id, "problems": problems})
            signature = _signature(detector)
            base_signature, base_detected = baseline[bench.number]
            diverged = signature != base_signature
            if injector.event_faults_triggered:
                event_faulted_runs += 1
                if diverged:
                    event_faulted_diverged += 1
                    warnings.append(
                        f"schedule {schedule} / DRACC {bench.number}: findings "
                        "diverged under callback-stream faults "
                        f"({len(signature)} vs {len(base_signature)} findings)"
                    )
            else:
                transparent_runs += 1
                if diverged:
                    transparent_divergences.append(
                        {
                            **run_id,
                            "baseline": list(base_signature),
                            "chaos": list(signature),
                        }
                    )
                detected = bool(detector.mapping_issue_findings())
                if detected != base_detected:
                    detection_mismatches.append(
                        {**run_id, "baseline": base_detected, "chaos": detected}
                    )

    divergence_rate = (
        event_faulted_diverged / event_faulted_runs if event_faulted_runs else 0.0
    )
    payload = {
        "seed": seed,
        "schedules": schedules,
        "faults_per_schedule": faults_per_schedule,
        "engine": engine,
        "suite": suite if benchmarks is None else "custom",
        "benchmarks": len(benches),
        "runs": schedules * len(benches),
        "crashes": crashes,
        "invariant_violations": invariant_violations,
        "injected_faults": dict(sorted(injected_counts.items())),
        "injected_total": sum(injected_counts.values()),
        "schedule_log": schedule_log,
        "quarantined_events": quarantined_events,
        "backoff_ticks": backoff_ticks,
        "latency_ticks": latency_ticks,
        "transparent_runs": transparent_runs,
        "transparent_divergences": transparent_divergences,
        "event_faulted_runs": event_faulted_runs,
        "event_faulted_diverged": event_faulted_diverged,
        "event_fault_divergence_rate": round(divergence_rate, 4),
        "detection_mismatches": detection_mismatches,
        "unfaulted_detection_unchanged": not detection_mismatches,
        "bounded_precision_loss": divergence_rate <= MAX_EVENT_FAULT_DIVERGENCE,
        "warnings": warnings,
    }
    payload["ok"] = (
        not crashes
        and not invariant_violations
        and not transparent_divergences
        and payload["unfaulted_detection_unchanged"]
        and payload["bounded_precision_loss"]
    )
    return payload


def run_chaos(
    *,
    seed: int = 0,
    schedules: int = 3,
    faults_per_schedule: int = 6,
    suite: str = "all",
    output: str = "BENCH_chaos.json",
    telemetry: bool = False,
    report: str | None = None,
    engine: str = "scalar",
) -> dict:
    """Run a campaign and write the tracked ``BENCH_chaos.json`` report.

    ``telemetry=True`` runs the campaign inside a metrics-only telemetry
    scope (event-ordinal clock, no spans) and embeds the snapshot under a
    ``"telemetry"`` key — recovery counters (retries, rollbacks, quarantine
    reasons) become visible per campaign instead of per debugger session.

    ``report=PATH`` additionally writes a forensics report (JSONL, see
    :mod:`repro.forensics.report`) of the campaign's *un-faulted* suite —
    the findings baseline the recovery guarantees are judged against, with
    full provenance timelines.
    """
    if telemetry:
        from ..telemetry import Telemetry, scope

        registry = Telemetry(record_spans=False)
        with scope(registry):
            payload = run_chaos_campaign(
                seed=seed,
                schedules=schedules,
                faults_per_schedule=faults_per_schedule,
                suite=suite,
                engine=engine,
            )
        payload["telemetry"] = registry.snapshot()
    else:
        payload = run_chaos_campaign(
            seed=seed,
            schedules=schedules,
            faults_per_schedule=faults_per_schedule,
            suite=suite,
            engine=engine,
        )
    tmp = output + ".tmp"
    with open(tmp, "w") as sink:
        json.dump(payload, sink, indent=2, sort_keys=True)
        sink.write("\n")
    os.replace(tmp, output)
    if report is not None:
        from ..forensics.report import write_report
        from .report import run_report

        write_report(run_report(suite=suite), report)
    return payload
