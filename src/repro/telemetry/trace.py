"""Chrome Trace Event export and self-time attribution for span traces.

:func:`chrome_trace` converts a :class:`~repro.telemetry.registry.Telemetry`
registry's spans into the Chrome Trace Event JSON object format — load the
written file in ``chrome://tracing`` or https://ui.perfetto.dev to see the
whole pipeline (runtime directives, bus fan-out, detector analysis) as
nested timeline slices.

:func:`self_times` computes the per-phase *self* time — each span's
duration minus its direct children's — which is the number that actually
attributes cost to a layer: a ``target:`` span contains the bus publishes
contains the detector's data-op handling, and only subtraction says who
spent what.  Under the event-ordinal clock "time" is event ordinals (a
proxy for event volume); under the wall clock it is seconds.
"""

from __future__ import annotations

from .registry import SpanRecord, Telemetry


def chrome_trace(t: Telemetry, *, pid: int = 0) -> dict:
    """The registry's spans as a Chrome Trace Event JSON object.

    Complete ("X"-phase) events, one per finished span.  Timestamps are
    microseconds when the wall clock was on, raw event ordinals otherwise —
    either way the file loads in Perfetto; ordinal traces simply read as
    "one microsecond per event ordinal".
    """
    wall = t.wall_clock
    events = []
    for span in t.spans:
        if wall:
            ts = round(span.wall_begin * 1e6, 3)
            dur = round((span.wall_end - span.wall_begin) * 1e6, 3)
        else:
            ts = span.ord_begin
            dur = span.ord_end - span.ord_begin
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "pid": pid,
            "tid": span.tid,
            "ts": ts,
            "dur": dur,
        }
        if span.args:
            event["args"] = {k: span.args[k] for k in sorted(span.args)}
        events.append(event)
    events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "wall" if wall else "ordinal",
            "producer": "repro.telemetry",
        },
    }


def self_times(t: Telemetry) -> list[dict]:
    """Per-(category, name) total/self durations, sorted by self descending.

    Parenthood is containment in the event-ordinal interval order on the
    same logical thread (ordinals advance at every boundary, so proper
    nesting is guaranteed); durations use the registry's clock.
    """
    wall = t.wall_clock

    class _Node:
        __slots__ = ("span", "dur", "child_dur")

        def __init__(self, span: SpanRecord) -> None:
            self.span = span
            self.dur = span.duration(wall=wall)
            self.child_dur = 0.0

    nodes = [_Node(s) for s in t.spans]
    nodes.sort(key=lambda n: (n.span.tid, n.span.ord_begin))
    stack: list[_Node] = []
    for node in nodes:
        while stack and (
            stack[-1].span.tid != node.span.tid
            or stack[-1].span.ord_end < node.span.ord_begin
        ):
            stack.pop()
        if stack:
            # ``node``'s whole subtree is inside its direct parent; adding
            # the full duration here (and only here) makes self = total -
            # direct children, with grandchildren charged one level down.
            stack[-1].child_dur += node.dur
        stack.append(node)

    rows: dict[tuple[str, str], dict] = {}
    for node in nodes:
        key = (node.span.cat, node.span.name)
        row = rows.get(key)
        if row is None:
            row = rows[key] = {
                "cat": key[0],
                "name": key[1],
                "count": 0,
                "total": 0.0,
                "self": 0.0,
            }
        row["count"] += 1
        row["total"] += node.dur
        row["self"] += node.dur - node.child_dur
    out = sorted(rows.values(), key=lambda r: (-r["self"], r["cat"], r["name"]))
    for row in out:
        row["total"] = round(row["total"], 9)
        row["self"] = round(row["self"], 9)
    return out


def render_self_time_table(t: Telemetry, *, limit: int = 25) -> str:
    """The self-time breakdown as an aligned text table."""
    rows = self_times(t)
    unit = "s" if t.wall_clock else "ticks"
    grand_self = sum(r["self"] for r in rows) or 1.0
    lines = [
        f"{'layer':<10} {'span':<32} {'count':>8} "
        f"{'total(' + unit + ')':>14} {'self(' + unit + ')':>14} {'self%':>7}"
    ]
    shown = rows[:limit]
    for r in shown:
        fmt = "{:.6f}" if t.wall_clock else "{:.0f}"
        lines.append(
            f"{r['cat']:<10} {r['name'][:32]:<32} {r['count']:>8} "
            f"{fmt.format(r['total']):>14} {fmt.format(r['self']):>14} "
            f"{100.0 * r['self'] / grand_self:>6.1f}%"
        )
    if len(rows) > limit:
        rest = sum(r["self"] for r in rows[limit:])
        fmt = "{:.6f}" if t.wall_clock else "{:.0f}"
        lines.append(
            f"{'...':<10} {f'({len(rows) - limit} more spans)':<32} {'':>8} "
            f"{'':>14} {fmt.format(rest):>14} {100.0 * rest / grand_self:>6.1f}%"
        )
    return "\n".join(lines)
