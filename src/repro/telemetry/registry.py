"""The telemetry registry: deterministic metrics and span tracing.

One :class:`Telemetry` instance holds every metric of one measured run:

* **counters** — monotonically increasing integers ("how many H2D
  transfers", "how many VSM transitions VALID_HOST->CONSISTENT");
* **gauges** — last-written values ("live mappings", "shadow bytes");
* **histograms** — power-of-two bucketed distributions ("transfer sizes");
* **spans** — begin/end intervals forming the pipeline trace, exported to
  Chrome Trace Event JSON by :mod:`repro.telemetry.trace`.

Two clocks drive the spans, chosen at construction time:

* the **event-ordinal clock** (default) stamps every span boundary with the
  next value of a per-registry counter.  Ordinals depend only on the event
  sequence, so two runs of a deterministic program produce *byte-identical*
  telemetry artifacts — the same guarantee the chaos layer makes for fault
  schedules, extended to observability;
* the **wall clock** (``wall_clock=True``) additionally stamps
  ``time.perf_counter()`` at every boundary, for real self-time profiles at
  the cost of determinism.

Scoping
-------

Instrumentation sites all over the stack (runtime, bus, detector, tools)
consult the module attribute :data:`ACTIVE`.  It is ``None`` by default:
the disabled fast path is a single attribute load and ``is not None``
check, and *no telemetry object even exists* — no counters are bumped, no
span records allocated.  A measured run activates a registry explicitly:

::

    t = Telemetry()
    with scope(t):
        ...  # everything in here is instrumented
    t.snapshot()

``scope`` restores the previous registry on exit, so sessions nest.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

#: The currently active registry, or ``None`` (telemetry disabled).
#: Instrumentation sites read this attribute directly; only :func:`scope`
#: (and tests) should write it.
ACTIVE: "Telemetry | None" = None


class Histogram:
    """A power-of-two bucketed distribution of non-negative integers.

    Bucket ``k`` counts observations ``v`` with ``2**(k-1) < v <= 2**k``
    (bucket 0 counts ``v <= 1``).  Fixed bucket boundaries keep snapshots
    byte-identical across runs regardless of observation order.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = max(value - 1, 0).bit_length()
        self.buckets[k] = self.buckets.get(k, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram.

        Buckets are fixed power-of-two edges, so merging is exact — it
        lets a hot path observe into a small window histogram and fold
        into the cumulative series in bulk, off the per-event path.
        """
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or other.min < self.min:
            self.min = other.min
        if self.max is None or other.max > self.max:
            self.max = other.max
        buckets = self.buckets
        for k, n in other.buckets.items():
            buckets[k] = buckets.get(k, 0) + n

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                f"<=2^{k}": self.buckets[k] for k in sorted(self.buckets)
            },
        }


class _Span:
    """Context manager recording one open span (allocated only when enabled)."""

    __slots__ = ("_t", "cat", "name", "tid", "args", "ord_begin", "wall_begin")

    def __init__(self, t: "Telemetry", cat: str, name: str, tid: int, args: dict):
        self._t = t
        self.cat = cat
        self.name = name
        self.tid = tid
        self.args = args

    def __enter__(self) -> "_Span":
        t = self._t
        t.ordinal += 1
        self.ord_begin = t.ordinal
        self.wall_begin = time.perf_counter() if t.wall_clock else 0.0
        return self

    def __exit__(self, *exc) -> bool:
        t = self._t
        t.ordinal += 1
        if not t.record_spans:
            return False
        wall_end = time.perf_counter() if t.wall_clock else 0.0
        t.spans.append(
            SpanRecord(
                cat=self.cat,
                name=self.name,
                tid=self.tid,
                ord_begin=self.ord_begin,
                ord_end=t.ordinal,
                wall_begin=self.wall_begin,
                wall_end=wall_end,
                args=self.args,
            )
        )
        return False


class SpanRecord:
    """One finished span: both clocks, category/name, free-form args."""

    __slots__ = (
        "cat", "name", "tid", "ord_begin", "ord_end",
        "wall_begin", "wall_end", "args",
    )

    def __init__(
        self,
        *,
        cat: str,
        name: str,
        tid: int,
        ord_begin: int,
        ord_end: int,
        wall_begin: float,
        wall_end: float,
        args: dict,
    ) -> None:
        self.cat = cat
        self.name = name
        self.tid = tid
        self.ord_begin = ord_begin
        self.ord_end = ord_end
        self.wall_begin = wall_begin
        self.wall_end = wall_end
        self.args = args

    def duration(self, *, wall: bool) -> float:
        if wall:
            return self.wall_end - self.wall_begin
        return self.ord_end - self.ord_begin


class Telemetry:
    """One run's worth of counters, gauges, histograms, and spans."""

    def __init__(self, *, wall_clock: bool = False, record_spans: bool = True) -> None:
        self.wall_clock = wall_clock
        #: ``False`` keeps counters/gauges/histograms (and the ordinal
        #: clock) but drops span records — metrics-only mode for long
        #: campaigns where a full trace would not fit in memory.
        self.record_spans = record_spans
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: list[SpanRecord] = []
        #: The event-ordinal clock: advanced at every span boundary.
        self.ordinal = 0

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- clock -------------------------------------------------------------

    def tick(self) -> int:
        """Advance the event-ordinal clock by one and return the new value.

        Span boundaries advance the clock inline; out-of-band consumers
        (the forensics flight recorder) share the same clock through this
        method so their timestamps interleave deterministically with spans.
        """
        self.ordinal += 1
        return self.ordinal

    # -- spans -------------------------------------------------------------

    def span(self, cat: str, name: str, *, tid: int = 0, **args) -> _Span:
        """Open a span; use as ``with t.span("runtime", "kernel:foo"): ...``."""
        return _Span(self, cat, name, tid, args)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """All metrics as a stable, JSON-serializable dict.

        Keys are sorted so ``json.dumps`` of two identical runs under the
        ordinal clock compares byte-for-byte.
        """
        return {
            "clock": "wall" if self.wall_clock else "ordinal",
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].snapshot() for k in sorted(self.histograms)
            },
            "spans": {"finished": len(self.spans), "ordinal_ticks": self.ordinal},
        }


@contextmanager
def scope(t: Telemetry) -> Iterator[Telemetry]:
    """Activate ``t`` for the dynamic extent of the block (re-entrant)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = t
    try:
        yield t
    finally:
        ACTIVE = previous
