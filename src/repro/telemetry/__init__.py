"""Telemetry: deterministic metrics, pipeline spans, Chrome-trace export.

See :mod:`repro.telemetry.registry` for the metric/span registry and the
scoping rules, and :mod:`repro.telemetry.trace` for the Chrome Trace Event
export and self-time attribution.
"""

from .registry import Histogram, SpanRecord, Telemetry, scope
from .trace import chrome_trace, render_self_time_table, self_times

# NOTE: the live enabled/disabled switch is ``registry.ACTIVE`` — read it
# through the module (``from repro.telemetry import registry``), never as a
# from-import, which would freeze the value at import time.

__all__ = [
    "Telemetry",
    "Histogram",
    "SpanRecord",
    "scope",
    "chrome_trace",
    "self_times",
    "render_self_time_table",
]
