"""Always-on deterministic sampling profiler for the tool-dispatch hot path.

Real continuous profilers (Google-Wide Profiling, Parca, Pyroscope) interrupt
the program on a *time* stride; that is useless for a deterministic replay
harness because two identical runs would disagree about where the samples
landed.  We sample on the **event-ordinal clock** instead: every published
access advances ``access.count`` ordinals — one per represented element, so
a bulk access from a vectorized kernel weighs as much as the element-wise
loop it stands for — and a sample fires whenever the countdown crosses a
``stride`` boundary.  Two runs of the same deterministic program therefore
produce *byte-identical* folded stacks — profiles diff cleanly across
commits, which is the whole point of continuous profiling in CI.

A sample attributes cost to ``(benchmark, phase, tool, code-site)`` where the
code-site is the simulated source stack carried by the sampled
:class:`~repro.events.records.Access`.  Each sample's recorded *weight* is
the number of elements that elapsed since the previous sample (at least
``stride``), so totals stay comparable across stride changes and bulk
accesses are not undercounted.

Sampling itself costs time.  The optional :class:`Governor` measures that tax
on the wall clock and adaptively widens the stride to keep it under a
configured budget (default 1%), narrowing again when the tax falls far below
budget.  The governor trades determinism for boundedness — with it enabled
the *stride schedule* depends on machine speed, so byte-identical output is
only guaranteed in fixed-stride mode (``governor=None``, the default).

Like telemetry and forensics, the disabled path is free: instrumentation
sites load :data:`ACTIVE` once and skip on ``None`` — no allocation, no
call (proven by tracemalloc in the test suite).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..events.records import Access
    from ..tools.base import Tool

#: The active profiler, or ``None`` (the common case: profiling disabled).
ACTIVE: "Profiler | None" = None

#: Default sampling stride (events per sample) before the governor adapts it.
DEFAULT_STRIDE = 512

#: Default governor budget: profiling tax as a fraction of wall time.
DEFAULT_BUDGET = 0.01

#: Max trace-frame links retained per folded stack (profile↔span stitching).
FRAME_LINKS = 4


@contextmanager
def scope(profiler: "Profiler | None") -> Iterator["Profiler | None"]:
    """Install ``profiler`` as the process-wide :data:`ACTIVE` profiler."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = profiler
    try:
        yield profiler
    finally:
        ACTIVE = previous


class Governor:
    """Adaptive stride controller bounding the measured profiling tax.

    Every sample's recording cost is timed; every ``cadence`` samples the
    governor compares the window's sampling time against the wall time that
    elapsed over the window and widens the stride (doubling) whenever the
    tax exceeds ``budget``.  When the tax drops below a quarter of budget it
    narrows again (halving, floored at ``min_stride``) so a workload that
    got cheaper regains resolution.  The ``timer`` is injectable so the
    convergence loop is testable without a real clock.
    """

    def __init__(
        self,
        budget: float = DEFAULT_BUDGET,
        *,
        cadence: int = 64,
        min_stride: int = 16,
        max_stride: int = 1 << 22,
        timer: Callable[[], float] = time.perf_counter,
    ) -> None:
        if budget <= 0.0:
            raise ValueError(f"governor budget must be positive, got {budget}")
        if cadence < 1:
            raise ValueError(f"governor cadence must be >= 1, got {cadence}")
        self.budget = budget
        self.cadence = cadence
        self.min_stride = min_stride
        self.max_stride = max_stride
        self.timer = timer
        #: Total seconds spent recording samples (all windows).
        self.sample_seconds = 0.0
        #: Tax measured over the most recent completed window.
        self.last_tax = 0.0
        #: Stride adjustments: ``(samples_seen, old_stride, new_stride)``.
        self.adjustments: list[tuple[int, int, int]] = []
        self._window_cost = 0.0
        self._window_samples = 0
        self._window_start: float | None = None
        self._samples_seen = 0

    def after_sample(self, cost: float, stride: int) -> int | None:
        """Account one sample's recording cost; return a new stride or None."""
        self.sample_seconds += cost
        self._window_cost += cost
        self._window_samples += 1
        self._samples_seen += 1
        if self._window_samples < self.cadence:
            return None
        now = self.timer()
        start = self._window_start
        window_cost = self._window_cost
        self._window_start = now
        self._window_cost = 0.0
        self._window_samples = 0
        if start is None:
            return None  # first full window: no elapsed baseline yet
        elapsed = now - start
        if elapsed <= 0.0:
            return None
        tax = min(1.0, window_cost / elapsed)
        self.last_tax = tax
        new = stride
        if tax > self.budget:
            new = min(stride * 2, self.max_stride)
        elif tax < self.budget / 4.0 and stride > self.min_stride:
            new = max(stride // 2, self.min_stride)
        if new != stride:
            self.adjustments.append((self._samples_seen, stride, new))
            return new
        return None

    def snapshot(self) -> dict:
        return {
            "budget": self.budget,
            "cadence": self.cadence,
            "sample_seconds": round(self.sample_seconds, 9),
            "last_tax": round(self.last_tax, 6),
            "adjustments": [list(a) for a in self.adjustments],
        }


def _frame_token(frame) -> str:
    """One folded-stack frame: no spaces or semicolons, so folded lines
    split unambiguously on ``";"`` and the final ``" "`` before the count."""
    col = f":{frame.column}" if frame.column else ""
    text = f"{frame.function}@{frame.file}:{frame.line}{col}"
    return text.replace(";", ",").replace(" ", "_")


class Profiler:
    """Event-ordinal stride sampler attributing tool cost to code sites.

    The hot-path entry points are :meth:`access_event` (scalar engine, one
    call per published access) and :meth:`batch_events` (columnar engine,
    one call per flushed batch).  Both advance the same ordinal clock, so a
    given trace yields identical sample ordinals on either engine — a
    differential invariant the test suite checks.

    Context is cheap mutable state: :meth:`set_context` names the current
    ``benchmark``/``phase`` (the serve layer points these at the session and
    shard), and :meth:`set_frame` links subsequent samples to a wire-frame
    identity ``(client, seq)`` so a hot folded stack can be joined against
    the stitched wire-v2 trace (profile↔span correlation).
    """

    def __init__(
        self,
        stride: int = DEFAULT_STRIDE,
        *,
        governor: Governor | None = None,
        benchmark: str = "-",
        phase: str = "host",
        track_kernel_phase: bool = True,
    ) -> None:
        if stride < 1:
            raise ValueError(f"profiler stride must be >= 1, got {stride}")
        #: Whether kernel begin/end events drive the phase (benchmark mode).
        #: The serve layer pins the phase to the shard instead.
        self.track_kernel_phase = track_kernel_phase
        self.initial_stride = stride
        self.stride = stride
        self.governor = governor
        self.events = 0
        self.samples = 0
        self._countdown = stride
        self._reset = stride  # countdown's start value (weight = reset - countdown)
        self._benchmark = benchmark
        self._phase = phase
        self._frame: tuple | None = None
        # key = (benchmark, phase, tool, stack) -> sample count / event weight
        self._counts: dict[tuple, int] = {}
        self._weights: dict[tuple, int] = {}
        # key -> up to FRAME_LINKS example (client, seq) wire-frame links
        self._frames: dict[tuple, list[tuple]] = {}

    # -- context ---------------------------------------------------------

    def set_context(self, benchmark: str | None = None, phase: str | None = None) -> None:
        if benchmark is not None:
            self._benchmark = benchmark
        if phase is not None:
            self._phase = phase

    def set_frame(self, client, seq: int) -> None:
        self._frame = (client, seq)

    def clear_frame(self) -> None:
        self._frame = None

    # -- hot path --------------------------------------------------------

    def access_event(self, access: "Access", tools: Sequence["Tool"]) -> None:
        """Advance ``access.count`` ordinals (scalar engine); maybe sample."""
        count = access.count
        self.events += count
        self._countdown -= count
        if self._countdown > 0:
            return
        self._sample(access, tools, self._reset - self._countdown)
        self._reset = self._countdown = self.stride

    def batch_events(self, accesses: Sequence["Access"], tools: Sequence["Tool"]) -> None:
        """Advance one ordinal per element of the batch (columnar engine).

        Samples land on exactly the accesses the scalar countdown would
        have picked, including governor stride changes mid-batch.
        """
        total = sum(access.count for access in accesses)
        self.events += total
        if total < self._countdown:
            self._countdown -= total
            return
        countdown = self._countdown
        reset = self._reset
        for access in accesses:
            countdown -= access.count
            if countdown <= 0:
                self._sample(access, tools, reset - countdown)
                reset = countdown = self.stride
        self._countdown = countdown
        self._reset = reset

    def kernel_event(self, name: str) -> None:
        """Track the phase from kernel launches (cold path)."""
        if self.track_kernel_phase:
            self._phase = name

    def _sample(
        self, access: "Access", tools: Sequence["Tool"], weight: int
    ) -> None:
        governor = self.governor
        t0 = governor.timer() if governor is not None else 0.0
        self.samples += 1
        bench = self._benchmark
        phase = self._phase
        stack = access.stack
        frame = self._frame
        counts = self._counts
        weights = self._weights
        for tool in tools:
            key = (bench, phase, getattr(tool, "name", type(tool).__name__), stack)
            if key in counts:
                counts[key] += 1
                weights[key] += weight
            else:
                counts[key] = 1
                weights[key] = weight
            if frame is not None:
                links = self._frames.setdefault(key, [])
                if len(links) < FRAME_LINKS:
                    links.append(frame)
        if governor is not None:
            new = governor.after_sample(governor.timer() - t0, self.stride)
            if new is not None:
                # The caller resets the countdown from self.stride right
                # after sampling, so the new stride takes effect immediately.
                self.stride = new

    # -- export ----------------------------------------------------------

    def folded_key(self, key: tuple) -> str:
        bench, phase, tool, stack = key
        frames = ";".join(_frame_token(f) for f in reversed(stack))
        return f"{bench};{phase};{tool};{frames}"

    def folded(self) -> str:
        """Folded-stack export: ``bench;phase;tool;frames... weight``.

        Deterministically ordered (sorted by folded key) so fixed-stride
        runs are byte-identical.
        """
        lines = [
            f"{text} {weight}"
            for text, weight in sorted(
                (self.folded_key(key), weight) for key, weight in self._weights.items()
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def samples_by_phase(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (bench, phase, tool, stack), count in self._counts.items():
            out[phase] = out.get(phase, 0) + count
        return dict(sorted(out.items()))

    def hot_stacks(self, limit: int = 10) -> list[dict]:
        """The heaviest folded stacks, with their wire-frame links."""
        ranked = sorted(
            self._weights.items(), key=lambda item: (-item[1], self.folded_key(item[0]))
        )
        out = []
        for key, weight in ranked[:limit]:
            out.append(
                {
                    "stack": self.folded_key(key),
                    "samples": self._counts[key],
                    "weight": weight,
                    "frames": [
                        {"client": client, "seq": seq}
                        for client, seq in self._frames.get(key, [])
                    ],
                }
            )
        return out

    def stats(self) -> dict:
        data = {
            "events": self.events,
            "samples": self.samples,
            "stride": self.stride,
            "initial_stride": self.initial_stride,
            "stacks": len(self._weights),
            "by_phase": self.samples_by_phase(),
        }
        if self.governor is not None:
            data["governor"] = self.governor.snapshot()
        return data

    def snapshot(self, *, limit: int = 50) -> dict:
        """Full JSON export: stats + hot stacks with span-correlation links."""
        data = self.stats()
        data["hot"] = self.hot_stacks(limit)
        return data
