"""Liveness and readiness documents for ``/healthz`` and ``/readyz``.

Two different questions, two different endpoints:

* ``/healthz`` — *is the service meeting its objectives right now?*
  Driven by the SLO watchdog: ``ok`` while no SLO burns, ``degraded``
  while at least one does — and the burning SLOs are **named** in the
  response, so an operator paged on degraded health sees *which*
  objective is burning without grepping logs.  Session-level DEGRADED
  markers are reported alongside but do not flip the status: a marker is
  a permanent fact about a past overflow, while health must recover once
  the current windows are clean (the healthy → degraded → healthy arc
  the chaos campaign asserts).
* ``/readyz`` — *can the service take traffic?*  Structural, not
  statistical: every shard worker alive and every journal writable.  A
  drained server is never ready.

Both return plain dicts; the front end serializes them as JSON.
"""

from __future__ import annotations

__all__ = ["healthz", "readyz"]


def healthz(server, observer=None) -> dict:
    """The liveness/SLO-health document served at ``/healthz``."""
    document: dict = {
        "status": "ok",
        "heartbeat": {
            "frames_handled": server.frames_handled,
            "sessions": len(server.sessions),
        },
        "degraded_sessions": sorted(
            client_id
            for client_id, session in server.sessions.items()
            if session.degraded
        ),
    }
    if observer is not None:
        burning = observer.watchdog.burning
        if burning:
            document["status"] = "degraded"
            document["burning"] = [
                {"slo": name, **burning[name]} for name in sorted(burning)
            ]
        document["heartbeat"]["observed_frames"] = observer.frames
        document["heartbeat"]["evaluations"] = observer.watchdog.evaluations
    else:
        document["observer"] = "disabled"
    return document


def readyz(server) -> dict:
    """The readiness document served at ``/readyz``.

    Ready exactly when the server can take traffic: not drained, every
    shard worker claimed and alive, every journal writable.  An idle
    server with no sessions is ready — shards are created per session.
    """
    shards_down: list[dict] = []
    journals_blocked: list[dict] = []
    for client_id in sorted(server.sessions):
        for worker in server.sessions[client_id].supervisor.workers:
            if not worker.alive:
                shards_down.append(
                    {"client": client_id, "shard": worker.shard_id}
                )
            if not worker.journal.writable:
                journals_blocked.append(
                    {"client": client_id, "shard": worker.shard_id}
                )
    ready = not server.drained and not shards_down and not journals_blocked
    return {
        "ready": ready,
        "drained": server.drained,
        "shards_down": shards_down,
        "journals_blocked": journals_blocked,
    }
