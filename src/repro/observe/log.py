"""Structured JSONL logging for the live serve stack.

``repro.serve`` grew up with ad-hoc ``print(...)`` lines: a listening
announcement here, a drain summary there, and nothing at all for the
events an operator actually greps for (worker restarts, shed frames,
decode errors, SLO burns).  This module replaces them with one append-only
JSON-lines stream where every record is machine-parseable and carries the
same identity fields the wire format does:

* ``event`` — dotted event name (``serve.listening``, ``worker.restart``,
  ``wire.decode_error``, ``slo.burn``, ...);
* ``ordinal`` — the logger's own deterministic event-ordinal clock, so two
  runs of the same session log byte-identical streams (wall time never
  appears unless a site explicitly passes it);
* ``client`` / ``seq`` / ``shard`` — the frame identity, when the event
  concerns one.

Scoping mirrors :mod:`repro.telemetry.registry`: instrumentation sites
consult the module attribute :data:`ACTIVE`, which is ``None`` by default —
the disabled fast path is one attribute load and an ``is not None`` check,
and no logger object exists.  ``repro serve --log-file`` activates one for
the process; harnesses activate one per session.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import IO, Iterator

__all__ = ["ACTIVE", "ObserveLog", "scope", "emit"]

#: The currently active logger, or ``None`` (structured logging disabled).
#: Instrumentation sites read this attribute directly; only :func:`scope`
#: (and explicit front-end wiring) should write it.
ACTIVE: "ObserveLog | None" = None


class ObserveLog:
    """An append-only JSONL event log with a deterministic ordinal clock.

    Events are retained in :attr:`entries` (for tests and harness
    assertions) and, when a ``sink`` is given, written through as one
    compact sorted-keys JSON line each — the shape ``jq`` and the CI
    observability job consume.  ``capacity`` bounds in-memory retention
    (the sink, if any, still sees every event): a long-lived server must
    not grow without bound just because it is logging.
    """

    def __init__(self, sink: IO[str] | None = None, *, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"log capacity must be positive, got {capacity}")
        self.sink = sink
        self.capacity = capacity
        self.entries: list[dict] = []
        self.ordinal = 0
        self.emitted = 0
        self.evicted = 0

    def event(
        self,
        event: str,
        *,
        client: int | None = None,
        seq: int | None = None,
        shard: int | None = None,
        **fields,
    ) -> dict:
        """Record one structured event; returns the entry that was logged."""
        self.ordinal += 1
        entry: dict = {"event": event, "ordinal": self.ordinal}
        if client is not None:
            entry["client"] = client
        if seq is not None:
            entry["seq"] = seq
        if shard is not None:
            entry["shard"] = shard
        for key in sorted(fields):
            value = fields[key]
            if value is not None:
                entry[key] = value
        self.emitted += 1
        self.entries.append(entry)
        if len(self.entries) > self.capacity:
            del self.entries[0]
            self.evicted += 1
        if self.sink is not None:
            self.sink.write(
                json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
            )
            flush = getattr(self.sink, "flush", None)
            if flush is not None:
                flush()  # a tail -f / CI scraper must see lines promptly
        return entry

    def named(self, event: str) -> list[dict]:
        """Every retained entry with the given event name, in log order."""
        return [e for e in self.entries if e["event"] == event]

    def stats(self) -> dict:
        return {
            "emitted": self.emitted,
            "retained": len(self.entries),
            "evicted": self.evicted,
        }


@contextmanager
def scope(log: ObserveLog) -> Iterator[ObserveLog]:
    """Activate ``log`` for the dynamic extent of the block (re-entrant)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = log
    try:
        yield log
    finally:
        ACTIVE = previous


def emit(event: str, **fields) -> None:
    """Log to the active logger, if any.

    Hot paths should guard with ``if _observe_log.ACTIVE is not None:``
    before building keyword arguments — this helper exists for warm paths
    (restarts, errors, lifecycle) where one extra call is immaterial.
    """
    log = ACTIVE
    if log is not None:
        log.event(event, **fields)
