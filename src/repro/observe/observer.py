"""The serve-stack observer: one object owning the live observability state.

An :class:`AnalysisServer` optionally carries one ``ServeObserver``.  When
it does, the serve hot path reports into it — frame counts, redeliveries,
wall-clock stage latencies (the *operational edge*, the one place this
codebase deliberately spends real time), and, when span tracing is on,
per-process span logs for the server and every shard worker.  When it
does not (the default), every instrumentation site is a single
``is not None`` check and the serve path allocates nothing on behalf of
observability — the telemetry discipline from PR 3, applied to the live
layer.

The observer also owns the :class:`~repro.observe.slo.SLOWatchdog` and
its evaluation cadence: every ``cadence`` handled frames (and once more,
forced, at FIN/drain) the current window is sampled and judged.  Windows
are frame-counted, not wall-timed, so the deterministic SLOs (redelivery
rate, queue occupancy) evaluate identically run to run.
"""

from __future__ import annotations

from typing import IO

from ..telemetry.registry import Histogram
from .log import ObserveLog
from .prof import DEFAULT_STRIDE, Governor, Profiler
from .slo import DEFAULT_SLOS, SLOSpec, SLOWatchdog
from .spans import SpanLog

__all__ = ["ServeObserver", "histogram_quantile"]


def histogram_quantile(hist: Histogram, q: float) -> float:
    """Approximate quantile from power-of-two buckets (upper bound).

    Returns the upper edge (``2**k``) of the first bucket whose cumulative
    count reaches the quantile — a conservative (over-)estimate, stable
    across runs because bucket edges are fixed.
    """
    if hist.count == 0:
        return 0.0
    target = q * hist.count
    cumulative = 0
    for k in sorted(hist.buckets):
        cumulative += hist.buckets[k]
        if cumulative >= target:
            return float(1 << k)
    return float(hist.max or 0)  # pragma: no cover - defensive


class ServeObserver:
    """Live observability state for one analysis server."""

    def __init__(
        self,
        *,
        log: ObserveLog | None = None,
        log_sink: IO[str] | None = None,
        slos: tuple[SLOSpec, ...] = DEFAULT_SLOS,
        cadence: int = 256,
        trace_spans: bool = False,
        wall_clock: bool = True,
        profile: "bool | Profiler" = True,
    ):
        if cadence < 1:
            raise ValueError(f"watchdog cadence must be positive, got {cadence}")
        self.log = log if log is not None else ObserveLog(log_sink)
        #: The continuous profiler sampling the shard dispatch hot path.
        #: ``wall_clock=True`` (production) arms the tax governor; the
        #: deterministic mode keeps a fixed stride so samples replay
        #: byte-identically.
        if isinstance(profile, Profiler):
            self.profiler: Profiler | None = profile
        elif profile:
            self.profiler = Profiler(
                stride=DEFAULT_STRIDE,
                governor=Governor() if wall_clock else None,
                benchmark="serve",
                track_kernel_phase=False,
            )
        else:
            self.profiler = None
        self.watchdog = SLOWatchdog(tuple(slos), log=self.log)
        self.cadence = cadence
        self.trace_spans = trace_spans
        #: ``True`` stamps real microseconds into the latency histograms
        #: (and arms the latency SLO); ``False`` keeps the observer fully
        #: deterministic for stitched-trace and chaos determinism tests.
        self.wall_clock = wall_clock
        self.server_spans: SpanLog | None = (
            SpanLog("server") if trace_spans else None
        )
        self._shard_spans: dict[int, SpanLog] = {}

        # Cumulative series.
        self.frames = 0
        self.redeliveries = 0
        self.decode_errors = 0
        self.replay_errors = 0
        self.frame_latency = Histogram()
        self.stage_latency: dict[str, Histogram] = {}

        # Current watchdog window.  The hot path appends raw latencies to
        # a plain list; :meth:`evaluate` folds the closed window into a
        # histogram once (exact — fixed bucket edges) for both the window
        # p99 and the cumulative series.  Per handled frame that is one
        # ``list.append``, not two histogram updates.
        self._window_frames = 0
        self._window_redeliveries = 0
        self._window_latencies: list[float] = []
        self._countdown = cadence

    # -- span logs ---------------------------------------------------------

    def shard_span_log(self, shard_id: int) -> SpanLog | None:
        """The per-shard span log (``shard-N``), or ``None`` if tracing is off."""
        if not self.trace_spans:
            return None
        log = self._shard_spans.get(shard_id)
        if log is None:
            log = self._shard_spans[shard_id] = SpanLog(f"shard-{shard_id}")
        return log

    def span_logs(self) -> list[SpanLog]:
        """Every span log this observer owns (server first, then shards)."""
        logs: list[SpanLog] = []
        if self.server_spans is not None:
            logs.append(self.server_spans)
        logs.extend(
            self._shard_spans[k] for k in sorted(self._shard_spans)
        )
        return logs

    # -- hot-path reporting ------------------------------------------------

    def count_redelivery(self, n: int = 1) -> None:
        """A frame needed redelivery (duplicate, shed, or crash-redriven)."""
        self.redeliveries += n
        self._window_redeliveries += n

    def count_decode_error(self) -> None:
        self.decode_errors += 1

    def count_replay_error(self) -> None:
        self.replay_errors += 1

    def observe_stage(self, stage: str, latency_us: float) -> None:
        """One wall-clock stage latency (``decode``, ``dispatch``, ...)."""
        hist = self.stage_latency.get(stage)
        if hist is None:
            hist = self.stage_latency[stage] = Histogram()
        hist.observe(int(latency_us))

    def frame_handled(self, server, latency_us: float | None = None) -> None:
        """One inbound frame fully handled; drives the watchdog cadence.

        The countdown keeps the cadence phase-locked to the cumulative
        frame count (a forced FIN evaluation does not reset it), matching
        an evaluation on every ``cadence``-th frame exactly.
        """
        self.frames += 1
        self._window_frames += 1
        if latency_us is not None:
            self._window_latencies.append(latency_us)
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.cadence
            self.evaluate(server)

    # -- watchdog ----------------------------------------------------------

    def window_histogram(self) -> Histogram:
        """The raw window latencies folded into one histogram."""
        hist = Histogram()
        observe = hist.observe
        for value in self._window_latencies:
            observe(value)
        return hist

    def window_sample(
        self, server, latency: Histogram | None = None
    ) -> dict:
        """The current window as an SLO sample (before reset)."""
        frames = self._window_frames
        sample: dict = {
            "frames": frames,
            "redelivery_rate": (
                self._window_redeliveries / frames if frames else 0.0
            ),
            "queue_occupancy": self._queue_occupancy(server),
        }
        if latency is None:
            latency = self.window_histogram()
        if self.wall_clock and latency.count:
            sample["p99_frame_latency_us"] = histogram_quantile(latency, 0.99)
        return sample

    @staticmethod
    def _queue_occupancy(server) -> float:
        cap = server.config.queue_cap or 1
        depths = [len(s.reorder) for s in server.sessions.values()]
        return max(depths, default=0) / cap

    def evaluate(self, server) -> dict:
        """Close the current window, judge it, and start the next one.

        Folding the window latency into the cumulative series here (not
        per frame) means a mid-window ``/metrics`` scrape can lag the
        live frame count by at most ``cadence`` frames — the price of a
        single-histogram-update hot path.
        """
        window = self.window_histogram()
        verdict = self.watchdog.evaluate(self.window_sample(server, window))
        self.frame_latency.merge(window)
        self._window_frames = 0
        self._window_redeliveries = 0
        self._window_latencies.clear()
        return verdict

    # -- export ------------------------------------------------------------

    def latency_summary(self) -> dict:
        """Cumulative latency series with approximate quantiles."""

        def summarize(hist: Histogram) -> dict:
            data = hist.snapshot()
            data["p50_us"] = histogram_quantile(hist, 0.50)
            data["p99_us"] = histogram_quantile(hist, 0.99)
            return data

        return {
            "frame": summarize(self.frame_latency),
            "stages": {
                stage: summarize(self.stage_latency[stage])
                for stage in sorted(self.stage_latency)
            },
        }

    def stats(self) -> dict:
        data = {
            "frames": self.frames,
            "redeliveries": self.redeliveries,
            "decode_errors": self.decode_errors,
            "replay_errors": self.replay_errors,
            "cadence": self.cadence,
            "wall_clock": self.wall_clock,
            "trace_spans": self.trace_spans,
            "watchdog": self.watchdog.stats(),
            "log": self.log.stats(),
        }
        if self.profiler is not None:
            data["profile"] = self.profiler.stats()
        return data
