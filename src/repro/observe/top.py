"""``repro top`` — a live terminal view of a running analysis server.

The client side of the observability story: connect to a serving
``repro serve --listen`` process, poll ``/metrics`` (the Prometheus text
exposition — *the same bytes a real scraper would read*, so ``top``
doubles as an end-to-end exposition test), join in ``/healthz`` and
``/readyz``, and render a per-shard table:

::

    repro top · localhost:7341 · status=ok ready=yes · frames=1024 events/s=512.0
    client  shard  applied  events/s  queue  p50us  p99us  restarts  alive
    22      0      256      128.0     0      64     256    1         yes
    ...

Rates are computed client-side from deltas between successive scrapes —
the server exports monotonic counters only, exactly like a production
Prometheus target.  ``--once`` prints a single snapshot (rates shown as
``-``), and ``--once --json`` emits the machine-readable document the CI
observability job asserts against.

Everything here speaks plain HTTP/1.0 over a raw socket: the server's
front end sniffs GET/HEAD on the same TCP port the binary wire protocol
uses, and this module is deliberately free of any HTTP client library.
"""

from __future__ import annotations

import json
import socket
import time
from typing import IO, Callable

__all__ = [
    "http_get",
    "parse_exposition",
    "metric_value",
    "shard_rows",
    "render_table",
    "run_top",
]


def http_get(
    host: str, port: int, path: str, *, timeout: float = 5.0
) -> tuple[int, bytes]:
    """Minimal HTTP/1.0 GET; returns ``(status_code, body)``."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed HTTP status line: {status_line!r}")
    return int(parts[1]), body


def _parse_label_body(body: str) -> dict:
    """Parse ``key="value",...`` honoring the exposition escape rules.

    Values may contain commas, quotes, backslashes and newlines — escaped
    as ``\\\\``, ``\\"`` and ``\\n`` — so a naive split on ``,`` is wrong.
    This is a small state machine: scan each key up to ``=``, then consume
    the quoted value unescaping as we go.
    """
    labels: dict = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed label body (no '='): {body[i:]!r}")
        key = body[i:eq]
        if not key or not key.replace("_", "").isalnum():
            raise ValueError(f"malformed label name: {key!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ValueError(f"label value for {key!r} is not quoted")
        value_chars: list[str] = []
        i = eq + 2
        while True:
            if i >= n:
                raise ValueError(f"unterminated label value for {key!r}")
            ch = body[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ValueError(f"dangling escape in label value for {key!r}")
                esc = body[i + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise ValueError(f"unknown escape \\{esc} in value for {key!r}")
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            value_chars.append(ch)
            i += 1
        labels[key] = "".join(value_chars)
        if i < n:
            if body[i] != ",":
                raise ValueError(f"expected ',' between label pairs at {body[i:]!r}")
            i += 1
    return labels


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse Prometheus text exposition into ``name -> [(labels, value)]``.

    Strict enough to double as a validity check: every sample line must
    be ``name[{labels}] value`` with a float-parseable value, and label
    bodies must be escape-aware ``key="value"`` pairs.  Raises
    ``ValueError`` on anything else — the CI job feeds the live
    ``/metrics`` body through this parser as its exposition-validity gate.
    """
    families: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed exposition line: {line!r}")
        if value_part == "+Inf":
            value = float("inf")
        else:
            value = float(value_part)  # raises ValueError on junk
        labels: dict = {}
        if name_part.endswith("}"):
            name, _, label_body = name_part.partition("{")
            labels = _parse_label_body(label_body[:-1])
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"malformed metric name: {name!r}")
        families.setdefault(name, []).append((labels, value))
    return families


def metric_value(
    families: dict[str, list[tuple[dict, float]]], name: str, **labels
) -> float | None:
    """The sample value matching ``labels`` exactly, or ``None``."""
    for sample_labels, value in families.get(name, []):
        if sample_labels == labels:
            return value
    return None


def _bucket_quantile(
    families: dict, name: str, q: float, **labels
) -> float | None:
    """Quantile from cumulative ``_bucket`` samples (upper bucket edge)."""
    buckets = [
        (float("inf") if sl["le"] == "+Inf" else float(sl["le"]), value)
        for sl, value in families.get(f"{name}_bucket", [])
        if {k: v for k, v in sl.items() if k != "le"} == labels
    ]
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    target = q * total
    for edge, cumulative in buckets:
        if cumulative >= target:
            return edge
    return buckets[-1][0]  # pragma: no cover - cumulative ends at total


def shard_rows(families: dict) -> list[dict]:
    """One table row per ``(client, shard)``, sorted."""
    rows = []
    for labels, applied in families.get("repro_serve_shard_applied_total", []):
        client, shard = labels["client"], labels["shard"]
        rows.append(
            {
                "client": int(client),
                "shard": int(shard),
                "applied": int(applied),
                "restarts": int(
                    metric_value(
                        families,
                        "repro_serve_shard_restarts_total",
                        client=client,
                        shard=shard,
                    )
                    or 0
                ),
                "alive": bool(
                    metric_value(
                        families,
                        "repro_serve_shard_alive",
                        client=client,
                        shard=shard,
                    )
                ),
                "queue": int(
                    metric_value(
                        families,
                        "repro_serve_session_queue_depth",
                        client=client,
                    )
                    or 0
                ),
                # The continuous profiler aggregates per shard phase (its
                # sampling is bus-level, not per-session), so every session
                # row for shard N shows shard N's sample count.
                "samples": int(
                    metric_value(
                        families,
                        "repro_serve_profile_samples_total",
                        shard=f"shard-{shard}",
                    )
                    or 0
                ),
            }
        )
    rows.sort(key=lambda r: (r["client"], r["shard"]))
    return rows


def _fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f}"


def render_table(
    families: dict,
    healthz: dict,
    readyz: dict,
    *,
    endpoint: str,
    rates: dict | None = None,
) -> str:
    """Render one scrape as the ``repro top`` screen."""
    rates = rates or {}
    frames = metric_value(families, "repro_serve_frames_handled_total") or 0
    p50 = _bucket_quantile(families, "repro_serve_frame_latency_us", 0.50)
    p99 = _bucket_quantile(families, "repro_serve_frame_latency_us", 0.99)
    burning = [b["slo"] for b in healthz.get("burning", [])]
    status = healthz["status"] + (f"[{','.join(burning)}]" if burning else "")
    header = (
        f"repro top · {endpoint} · status={status} "
        f"ready={'yes' if readyz['ready'] else 'no'} · "
        f"frames={int(frames)} events/s={_fmt_rate(rates.get('events'))}"
    )
    if p50 is not None:
        header += f" p50us={int(p50)} p99us={int(p99)}"
    columns = (
        "client",
        "shard",
        "applied",
        "events/s",
        "queue",
        "samples",
        "restarts",
        "alive",
    )
    table = [columns]
    for row in shard_rows(families):
        table.append(
            (
                str(row["client"]),
                str(row["shard"]),
                str(row["applied"]),
                _fmt_rate(rates.get(("shard", row["client"], row["shard"]))),
                str(row["queue"]),
                str(row["samples"]),
                str(row["restarts"]),
                "yes" if row["alive"] else "DOWN",
            )
        )
    widths = [
        max(len(line[col]) for line in table) for col in range(len(columns))
    ]
    lines = [header]
    for line in table:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip()
        )
    return "\n".join(lines)


def _scrape(host: str, port: int) -> tuple[dict, dict, dict]:
    status, body = http_get(host, port, "/metrics")
    if status != 200:
        raise RuntimeError(f"/metrics returned HTTP {status}")
    families = parse_exposition(body.decode("utf-8"))
    _, health_body = http_get(host, port, "/healthz")
    _, ready_body = http_get(host, port, "/readyz")
    return families, json.loads(health_body), json.loads(ready_body)


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 1.0,
    iterations: int | None = None,
    once: bool = False,
    json_output: bool = False,
    out: IO[str],
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll the server and render; returns a process exit code.

    ``--once`` (or ``iterations``) bounds the loop; the default streams
    until interrupted.  Exit code 0 when the last scrape was ready and
    healthy, 1 when degraded or not ready — so CI can gate on it.
    """
    previous: dict | None = None
    previous_wall: float | None = None
    families: dict = {}
    healthz: dict = {"status": "unknown"}
    readyz: dict = {"ready": False}
    count = 0
    while True:
        families, healthz, readyz = _scrape(host, port)
        rates: dict = {}
        now = time.monotonic()
        if previous is not None and previous_wall is not None:
            elapsed = max(now - previous_wall, 1e-9)

            def rate(name: str, **labels) -> float | None:
                cur = metric_value(families, name, **labels)
                prev = metric_value(previous, name, **labels)
                if cur is None or prev is None:
                    return None
                return max(cur - prev, 0.0) / elapsed

            rates["events"] = rate("repro_serve_events_delivered_total")
            for row in shard_rows(families):
                rates[("shard", row["client"], row["shard"])] = rate(
                    "repro_serve_shard_applied_total",
                    client=str(row["client"]),
                    shard=str(row["shard"]),
                )
        if json_output:
            out.write(
                json.dumps(
                    {
                        "endpoint": f"{host}:{port}",
                        "healthz": healthz,
                        "readyz": readyz,
                        "frames_handled": metric_value(
                            families, "repro_serve_frames_handled_total"
                        ),
                        "events_delivered": metric_value(
                            families, "repro_serve_events_delivered_total"
                        ),
                        "events_per_sec": rates.get("events"),
                        "profile_events": metric_value(
                            families, "repro_serve_profile_events_total"
                        ),
                        "profile_stride": metric_value(
                            families, "repro_serve_profile_stride"
                        ),
                        "shards": shard_rows(families),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        else:
            out.write(
                render_table(
                    families,
                    healthz,
                    readyz,
                    endpoint=f"{host}:{port}",
                    rates=rates,
                )
                + "\n\n"
            )
        count += 1
        if once or (iterations is not None and count >= iterations):
            break
        previous = families
        previous_wall = now
        sleep(interval)
    ok = readyz.get("ready") and healthz.get("status") == "ok"
    return 0 if ok else 1
