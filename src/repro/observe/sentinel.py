"""Statistical perf-regression sentinel over the bench-history ledger.

The fixed 5% threshold in ``repro diff`` is threshold folklore: on a noisy
machine it cries wolf, on a quiet one it waves through a real 4% loss.  The
sentinel replaces it with two classical tests over the *history* of runs:

* a **Mann-Whitney U** change-point test (normal approximation with tie
  correction — no scipy in this environment) comparing the last ``window``
  runs against everything before them, per metric series; and
* a **seeded bootstrap confidence interval** on the relative median shift,
  so a verdict also says *how big* the change is, with uncertainty.

A series regresses only when all three hold: the shift points in the bad
direction for that metric, the Mann-Whitney p-value clears ``alpha``, and
the bootstrap CI excludes zero on the bad side with the median shift beyond
a practical floor (``min_shift``, default 2% — statistically real but
microscopic moves are not actionable).  Everything is seeded and
deterministic: the same ledger always yields the same verdicts.

Metric direction is inferred from the name (``slowdown``/``latency``/
``bytes`` up = bad; ``events_per_sec``/``clean`` up = good); unknown metrics
are skipped rather than guessed.  Entries from a different engine than the
newest entry are excluded — cross-engine timings are not one population.
"""

from __future__ import annotations

import math
import random
from statistics import median
from typing import Sequence

from .history import load_history

#: Two-sided significance level for the Mann-Whitney verdict.
DEFAULT_ALPHA = 0.05

#: Change-point window: the last N runs are the candidate population.
DEFAULT_WINDOW = 5

#: Bootstrap resamples for the shift confidence interval.
DEFAULT_BOOTSTRAP = 1000

#: Practical floor: relative median shifts below this are never regressions.
DEFAULT_MIN_SHIFT = 0.02

#: Default RNG seed — verdicts must be reproducible from the ledger alone.
DEFAULT_SEED = 108

#: Minimum populations for a statistically meaningful verdict.
MIN_BASELINE = 4
MIN_CANDIDATE = 3

_UP_IS_GOOD = ("per_sec", "clean", "equivalent", "strict_savings", "programs")
_UP_IS_BAD = (
    "slowdown",
    "latency",
    "seconds",
    "bytes",
    "overhead",
    "tax",
    "redeliver",
    "error",
)


def metric_direction(metric: str) -> int:
    """+1 when an increase is a regression, -1 when a decrease is, 0 skip."""
    name = metric.lower()
    for hint in _UP_IS_GOOD:
        if hint in name:
            return -1
    for hint in _UP_IS_BAD:
        if hint in name:
            return +1
    return 0


def mann_whitney(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test: returns ``(u_b, p_value)``.

    Normal approximation with tie correction and continuity correction —
    adequate for the n >= 3-ish populations a bench ledger provides, and
    dependency-free (no scipy in this environment).
    """
    n1, n2 = len(a), len(b)
    if n1 < 1 or n2 < 1:
        raise ValueError("mann_whitney needs non-empty populations")
    pooled = [(value, 0) for value in a] + [(value, 1) for value in b]
    pooled.sort(key=lambda item: item[0])
    n = n1 + n2
    ranks = [0.0] * n
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = rank
        t = j - i + 1
        if t > 1:
            tie_term += t * t * t - t
        i = j + 1
    r2 = sum(rank for rank, (_, group) in zip(ranks, pooled) if group == 1)
    u2 = r2 - n2 * (n2 + 1) / 2.0
    mu = n1 * n2 / 2.0
    var = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0.0:  # every value identical: no evidence of change
        return u2, 1.0
    z = (u2 - mu - math.copysign(0.5, u2 - mu)) / math.sqrt(var)
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return u2, min(1.0, p)


def bootstrap_shift_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    *,
    seed: int | str = DEFAULT_SEED,
    resamples: int = DEFAULT_BOOTSTRAP,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Seeded bootstrap CI for the relative median shift candidate/baseline."""
    rng = random.Random(f"sentinel:{seed}")
    n1, n2 = len(baseline), len(candidate)
    shifts = []
    for _ in range(resamples):
        base = sorted(baseline[rng.randrange(n1)] for _ in range(n1))
        cand = sorted(candidate[rng.randrange(n2)] for _ in range(n2))
        base_med = median(base)
        if base_med == 0:
            continue
        shifts.append((median(cand) - base_med) / abs(base_med))
    if not shifts:
        return 0.0, 0.0
    shifts.sort()
    tail = (1.0 - confidence) / 2.0
    lo = shifts[max(0, int(math.floor(tail * len(shifts))))]
    hi = shifts[min(len(shifts) - 1, int(math.ceil((1.0 - tail) * len(shifts))) - 1)]
    return lo, hi


def extract_series(entries: list[dict]) -> dict[tuple[str, str, str], list[float]]:
    """Per-(workload, config, metric) value series, in ledger order."""
    series: dict[tuple[str, str, str], list[float]] = {}

    def push(workload: str, config: str, metric: str, value) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        series.setdefault((workload, config, metric), []).append(float(value))

    for entry in entries:
        metrics = entry.get("metrics", {})
        kind = entry.get("kind")
        if kind == "bench":
            for metric, value in metrics.get("summary", {}).items():
                push("summary", "geomean", metric, value)
            for workload, configs in metrics.get("workloads", {}).items():
                for config, value in configs.items():
                    push(workload, config, "slowdown", value)
        elif kind == "serve-bench":
            suite = str(metrics.get("suite", "serve"))
            for metric, value in metrics.get("summary", {}).items():
                push(suite, "serve", metric, value)
        elif kind == "synth-bench":
            for metric, value in metrics.get("summary", {}).items():
                push("synth", "matrix", metric, value)
    return series


def _verdict_for(
    key: tuple[str, str, str],
    values: list[float],
    *,
    window: int,
    alpha: float,
    seed: int | str,
    resamples: int,
    min_shift: float,
) -> dict:
    workload, config, metric = key
    direction = metric_direction(metric)
    out = {
        "workload": workload,
        "config": config,
        "metric": metric,
        "runs": len(values),
        "verdict": "ok",
    }
    if direction == 0:
        out["verdict"] = "skipped-unknown-direction"
        return out
    baseline = values[:-window]
    candidate = values[-window:]
    if len(baseline) < MIN_BASELINE or len(candidate) < MIN_CANDIDATE:
        out["verdict"] = "insufficient-history"
        out["baseline_n"] = len(baseline)
        out["candidate_n"] = len(candidate)
        return out
    base_med = median(baseline)
    cand_med = median(candidate)
    shift = (cand_med - base_med) / abs(base_med) if base_med else 0.0
    _, p = mann_whitney(baseline, candidate)
    lo, hi = bootstrap_shift_ci(
        baseline,
        candidate,
        seed=f"{seed}:{workload}:{config}:{metric}",
        resamples=resamples,
    )
    out.update(
        {
            "baseline_n": len(baseline),
            "candidate_n": len(candidate),
            "baseline_median": round(base_med, 6),
            "candidate_median": round(cand_med, 6),
            "shift_rel": round(shift, 6),
            "p_value": round(p, 6),
            "confidence": round(1.0 - p, 6),
            "ci95_rel": [round(lo, 6), round(hi, 6)],
            "direction": "up-is-bad" if direction > 0 else "up-is-good",
        }
    )
    significant = p < alpha
    ci_excludes_zero_bad = lo > 0.0 if direction > 0 else hi < 0.0
    bad = shift * direction > 0 and abs(shift) >= min_shift
    good = shift * direction < 0 and abs(shift) >= min_shift
    if significant and ci_excludes_zero_bad and bad:
        out["verdict"] = "regression"
    elif significant and good:
        out["verdict"] = "improvement"
    return out


def run_sentinel(
    history: str | list[dict],
    *,
    kind: str = "bench",
    window: int = DEFAULT_WINDOW,
    alpha: float = DEFAULT_ALPHA,
    seed: int | str = DEFAULT_SEED,
    resamples: int = DEFAULT_BOOTSTRAP,
    min_shift: float = DEFAULT_MIN_SHIFT,
) -> dict:
    """Change-point verdicts for every metric series in the ledger.

    ``history`` is a ledger path or pre-loaded entries.  Only entries of
    ``kind`` whose engine matches the *newest* such entry participate —
    mixing engines would compare different populations.
    """
    entries = load_history(history, kind=kind) if isinstance(history, str) else [
        entry for entry in history if entry.get("kind") == kind
    ]
    if window < MIN_CANDIDATE:
        raise ValueError(f"window must be >= {MIN_CANDIDATE}, got {window}")
    payload: dict = {
        "schema": "sentinel/1",
        "kind": kind,
        "window": window,
        "alpha": alpha,
        "seed": seed,
        "min_shift": min_shift,
        "entries": len(entries),
        "skipped_entries": 0,
        "engine": None,
        "verdicts": [],
        "regressions": [],
        "ok": True,
    }
    if not entries:
        return payload
    engine = entries[-1].get("meta", {}).get("engine")
    kept = [entry for entry in entries if entry.get("meta", {}).get("engine") == engine]
    payload["engine"] = engine
    payload["skipped_entries"] = len(entries) - len(kept)
    verdicts = [
        _verdict_for(
            key,
            values,
            window=window,
            alpha=alpha,
            seed=seed,
            resamples=resamples,
            min_shift=min_shift,
        )
        for key, values in sorted(extract_series(kept).items())
    ]
    rank = {"regression": 0, "improvement": 1, "ok": 2}
    verdicts.sort(
        key=lambda v: (
            rank.get(v["verdict"], 3),
            -v.get("confidence", 0.0),
            v["workload"],
            v["config"],
            v["metric"],
        )
    )
    payload["verdicts"] = verdicts
    payload["regressions"] = [
        {
            "workload": v["workload"],
            "config": v["config"],
            "metric": v["metric"],
            "shift_rel": v["shift_rel"],
            "confidence": v["confidence"],
        }
        for v in verdicts
        if v["verdict"] == "regression"
    ]
    payload["ok"] = not payload["regressions"]
    return payload


def noise_thresholds(
    history: str | list[dict],
    *,
    kind: str = "bench",
    floor: float = 0.01,
    seed: int | str = DEFAULT_SEED,
    resamples: int = 500,
    quantile: float = 0.95,
    confidence: float = 0.95,
) -> dict[str, float]:
    """Per-summary-metric noise gates for ``repro diff --history``.

    For each summary geomean series in the ledger, bootstrap the
    ``quantile`` of the absolute run-to-run relative deltas and take the
    upper ``confidence`` bound: a two-artifact diff then only flags a
    metric when it moved more than that machine's own historical noise,
    never less than ``floor``.  Seeded and deterministic, like the
    sentinel itself.
    """
    entries = load_history(history, kind=kind) if isinstance(history, str) else [
        entry for entry in history if entry.get("kind") == kind
    ]
    if not entries:
        return {}
    engine = entries[-1].get("meta", {}).get("engine")
    kept = [entry for entry in entries if entry.get("meta", {}).get("engine") == engine]
    out: dict[str, float] = {}
    for (workload, config, metric), values in sorted(extract_series(kept).items()):
        if workload != "summary" or config != "geomean" or len(values) < 4:
            continue
        deltas = [
            abs((values[i + 1] - values[i]) / values[i])
            for i in range(len(values) - 1)
            if values[i]
        ]
        if not deltas:
            continue
        rng = random.Random(f"noise:{seed}:{metric}")
        stats = []
        for _ in range(resamples):
            sample = sorted(
                deltas[rng.randrange(len(deltas))] for _ in range(len(deltas))
            )
            stats.append(sample[min(len(sample) - 1, int(quantile * len(sample)))])
        stats.sort()
        upper = stats[min(len(stats) - 1, int(confidence * len(stats)))]
        out[metric] = max(floor, round(upper, 4))
    return out


def render_sentinel(payload: dict) -> str:
    """Human-readable sentinel report."""
    lines = [
        f"sentinel: {payload['entries']} {payload['kind']} run(s), "
        f"engine={payload['engine']}, window={payload['window']}, "
        f"alpha={payload['alpha']}"
    ]
    if payload["skipped_entries"]:
        lines.append(
            f"  (skipped {payload['skipped_entries']} entr(y/ies) from other engines)"
        )
    shown = 0
    for v in payload["verdicts"]:
        if v["verdict"] in ("skipped-unknown-direction",):
            continue
        if v["verdict"] == "ok" and shown >= 12:
            continue
        cell = f"{v['workload']}/{v['config']}/{v['metric']}"
        if v["verdict"] == "insufficient-history":
            lines.append(
                f"  ?  {cell}: insufficient history "
                f"(baseline {v.get('baseline_n', 0)}, candidate {v.get('candidate_n', 0)})"
            )
            continue
        mark = {"regression": "✗", "improvement": "✓", "ok": "·"}[v["verdict"]]
        lines.append(
            f"  {mark}  {cell}: {v['verdict']} "
            f"shift {v['shift_rel']:+.1%} "
            f"(CI95 [{v['ci95_rel'][0]:+.1%}, {v['ci95_rel'][1]:+.1%}], "
            f"confidence {v['confidence']:.1%}, "
            f"median {v['baseline_median']} → {v['candidate_median']})"
        )
        shown += 1
    if payload["regressions"]:
        worst = payload["regressions"][0]
        lines.append(
            f"VERDICT: REGRESSION — {worst['workload']}/{worst['config']}/"
            f"{worst['metric']} shifted {worst['shift_rel']:+.1%} "
            f"(confidence {worst['confidence']:.1%})"
        )
    elif payload["entries"] == 0:
        lines.append("VERDICT: NO HISTORY — ledger has no entries of this kind")
    else:
        lines.append("VERDICT: OK — no statistically significant regression")
    return "\n".join(lines)
