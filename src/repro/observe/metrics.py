"""Service-level metric snapshots and Prometheus text exposition.

The serve stack already counts everything that matters — per-session
ordering stats live on :class:`~repro.serve.server._Session`, per-shard
detector stats on :class:`~repro.serve.shard.ShardWorker`, journal depth
on :class:`~repro.serve.journal.ShardJournal` — but each count lives
where it is produced.  :func:`service_snapshot` walks the whole tree once
and aggregates it into one JSON document (the shape ``repro top --json``
prints and the bench artifact embeds), and :func:`render_prometheus`
lowers that document to the Prometheus text exposition format served at
``/metrics``.

Both are read-only over live server state: scraping never perturbs the
hot path, and two scrapes of an idle server render byte-identical text
(sorted clients, shards, stages, buckets).

Histograms are the stack's power-of-two
:class:`~repro.telemetry.registry.Histogram`\\ s; exposition lowers them to
cumulative ``le`` buckets at the power-of-two edges plus ``+Inf``, which
is exactly what ``histogram_quantile()`` in PromQL expects.
"""

from __future__ import annotations

__all__ = ["service_snapshot", "render_prometheus", "METRICS_SCHEMA"]

METRICS_SCHEMA = "serve-metrics/1"


def _session_snapshot(session) -> dict:
    sup = session.supervisor
    return {
        "queue_depth": len(session.reorder),
        "next_seq": session.next_seq,
        "finished": session.finished,
        "degraded": session.degraded,
        "degraded_markers": len(session.ledger.markers),
        "dup_frames": session.dup_frames,
        "shed_frames": session.shed_frames,
        "nacks_sent": session.nacks_sent,
        "events_delivered": sup.events_delivered,
        "delivery_attempts": sup.delivery_attempts,
        "duplicates_dropped": sup.duplicates_dropped,
        "worker_restarts": sup.worker_restarts,
        "findings": len(session.ledger.delivered),
        "shards": {
            str(worker.shard_id): {
                "alive": worker.alive,
                "applied": worker.applied,
                "restarts": worker.restarts,
                "replayed_events": worker.replayed_events,
                "journal_entries": len(worker.journal),
            }
            for worker in sup.workers
        },
    }


def service_snapshot(server, observer=None) -> dict:
    """Aggregate live server (and observer) state into one document."""
    sessions = {
        str(client_id): _session_snapshot(server.sessions[client_id])
        for client_id in sorted(server.sessions)
    }
    totals = {
        "sessions": len(sessions),
        "finished_sessions": sum(1 for s in sessions.values() if s["finished"]),
        "degraded_sessions": sum(1 for s in sessions.values() if s["degraded"]),
        "in_flight_frames": sum(s["queue_depth"] for s in sessions.values()),
        "queue_cap": server.config.queue_cap,
    }
    for key in (
        "degraded_markers",
        "dup_frames",
        "shed_frames",
        "nacks_sent",
        "events_delivered",
        "delivery_attempts",
        "duplicates_dropped",
        "worker_restarts",
        "findings",
    ):
        totals[key] = sum(s[key] for s in sessions.values())
    totals["shards_alive"] = sum(
        1
        for s in sessions.values()
        for shard in s["shards"].values()
        if shard["alive"]
    )
    totals["shards_total"] = sum(len(s["shards"]) for s in sessions.values())
    totals["journal_entries"] = sum(
        shard["journal_entries"]
        for s in sessions.values()
        for shard in s["shards"].values()
    )
    totals["replayed_events"] = sum(
        shard["replayed_events"]
        for s in sessions.values()
        for shard in s["shards"].values()
    )
    snapshot = {
        "schema": METRICS_SCHEMA,
        "frames_handled": server.frames_handled,
        "drained": server.drained,
        "sessions": sessions,
        "totals": totals,
    }
    if observer is not None:
        snapshot["observer"] = observer.stats()
        snapshot["latency"] = observer.latency_summary()
        profiler = getattr(observer, "profiler", None)
        if profiler is not None:
            snapshot["profile"] = {
                "events": profiler.events,
                "samples": profiler.samples,
                "stride": profiler.stride,
                "by_phase": profiler.samples_by_phase(),
                "governor_tax": (
                    profiler.governor.last_tax
                    if profiler.governor is not None
                    else None
                ),
            }
    return snapshot


# -- Prometheus text exposition -------------------------------------------


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition spec.

    Backslash, double-quote and newline are the three characters the spec
    requires escaping inside quoted label values; anything else passes
    through verbatim.  Order matters: backslash first, or the escapes we
    just introduced would be re-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(**labels) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return "{" + body + "}"


class _Exposition:
    """Accumulates HELP/TYPE metadata and samples per metric family."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, **labels) -> None:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float) and value == int(value):
            value = int(value)
        self.lines.append(f"{name}{_labels(**labels)} {value}")

    def histogram(self, name: str, summary: dict, **labels) -> None:
        """Lower a power-of-two histogram summary to cumulative buckets.

        ``summary`` is a :meth:`Histogram.snapshot` dict (bucket keys are
        ``"<=2^k"``); the exposition gets one cumulative sample per edge
        plus ``+Inf``, then ``_sum`` and ``_count``.
        """
        cumulative = 0
        for key in sorted(summary["buckets"], key=lambda k: int(k[4:])):
            cumulative += summary["buckets"][key]
            edge = 1 << int(key[4:])
            self.sample(
                f"{name}_bucket", cumulative, le=str(edge), **labels
            )
        self.sample(f"{name}_bucket", summary["count"], le="+Inf", **labels)
        self.sample(f"{name}_sum", summary["sum"], **labels)
        self.sample(f"{name}_count", summary["count"], **labels)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: dict) -> str:
    """Lower a :func:`service_snapshot` document to exposition text."""
    exp = _Exposition()
    totals = snapshot["totals"]

    exp.family(
        "repro_serve_frames_handled_total",
        "counter",
        "Inbound frames handled by the protocol engine.",
    )
    exp.sample("repro_serve_frames_handled_total", snapshot["frames_handled"])

    gauges = [
        ("repro_serve_sessions", totals["sessions"], "Sessions ever opened."),
        (
            "repro_serve_in_flight_frames",
            totals["in_flight_frames"],
            "Frames parked in reorder buffers across all sessions.",
        ),
        (
            "repro_serve_queue_cap",
            totals["queue_cap"],
            "Per-session reorder buffer capacity in frames.",
        ),
        (
            "repro_serve_degraded_sessions",
            totals["degraded_sessions"],
            "Sessions currently marked DEGRADED.",
        ),
        (
            "repro_serve_shards_alive",
            totals["shards_alive"],
            "Shard workers currently alive.",
        ),
        (
            "repro_serve_shards_total",
            totals["shards_total"],
            "Shard workers configured across all sessions.",
        ),
        (
            "repro_serve_journal_entries",
            totals["journal_entries"],
            "Journaled event frames across all shards.",
        ),
    ]
    for name, value, help_text in gauges:
        exp.family(name, "gauge", help_text)
        exp.sample(name, value)

    counters = [
        (
            "repro_serve_dup_frames_total",
            totals["dup_frames"],
            "Duplicate EVENT frames dropped (re-ACKed or re-NACKed).",
        ),
        (
            "repro_serve_shed_frames_total",
            totals["shed_frames"],
            "Frames shed by reorder-buffer backpressure.",
        ),
        (
            "repro_serve_nacks_total",
            totals["nacks_sent"],
            "NACK frames sent.",
        ),
        (
            "repro_serve_degraded_markers_total",
            totals["degraded_markers"],
            "DEGRADED markers recorded in delivery ledgers.",
        ),
        (
            "repro_serve_worker_restarts_total",
            totals["worker_restarts"],
            "Shard worker restarts (crash recovery).",
        ),
        (
            "repro_serve_events_delivered_total",
            totals["events_delivered"],
            "Event frames fully dispatched to their shards.",
        ),
        (
            "repro_serve_replayed_events_total",
            totals["replayed_events"],
            "Journal entries re-applied during worker restarts.",
        ),
        (
            "repro_serve_findings_total",
            totals["findings"],
            "Findings delivered across all finished sessions.",
        ),
    ]
    for name, value, help_text in counters:
        exp.family(name, "counter", help_text)
        exp.sample(name, value)

    exp.family(
        "repro_serve_session_queue_depth",
        "gauge",
        "Reorder-buffer depth per session.",
    )
    for client, sess in snapshot["sessions"].items():
        exp.sample(
            "repro_serve_session_queue_depth",
            sess["queue_depth"],
            client=client,
        )
    exp.family(
        "repro_serve_shard_applied_total",
        "counter",
        "Events applied per shard worker.",
    )
    exp.family(
        "repro_serve_shard_restarts_total",
        "counter",
        "Restarts per shard worker.",
    )
    exp.family(
        "repro_serve_shard_alive",
        "gauge",
        "Liveness per shard worker (1 = alive).",
    )
    for client, sess in snapshot["sessions"].items():
        for shard, stats in sess["shards"].items():
            exp.sample(
                "repro_serve_shard_applied_total",
                stats["applied"],
                client=client,
                shard=shard,
            )
            exp.sample(
                "repro_serve_shard_restarts_total",
                stats["restarts"],
                client=client,
                shard=shard,
            )
            exp.sample(
                "repro_serve_shard_alive",
                stats["alive"],
                client=client,
                shard=shard,
            )

    observer = snapshot.get("observer")
    if observer is not None:
        observer_counters = [
            (
                "repro_serve_redeliveries_total",
                observer["redeliveries"],
                "Frames that needed redelivery (dup, shed, crash-redriven).",
            ),
            (
                "repro_serve_wire_decode_errors_total",
                observer["decode_errors"],
                "Wire frames rejected by the decoder or payload parser.",
            ),
            (
                "repro_serve_journal_replay_errors_total",
                observer["replay_errors"],
                "Journal entries skipped during replay (malformed).",
            ),
            (
                "repro_serve_slo_evaluations_total",
                observer["watchdog"]["evaluations"],
                "SLO watchdog window evaluations.",
            ),
            (
                "repro_serve_slo_burn_events_total",
                observer["watchdog"]["burn_events"],
                "SLO burn transitions observed by the watchdog.",
            ),
        ]
        for name, value, help_text in observer_counters:
            exp.family(name, "counter", help_text)
            exp.sample(name, value)
        exp.family(
            "repro_serve_slo_burning",
            "gauge",
            "Whether the named SLO is currently burning (1 = burning).",
        )
        burning = set(observer["watchdog"]["burning"])
        for spec in observer["watchdog"]["specs"]:
            exp.sample(
                "repro_serve_slo_burning",
                spec["name"] in burning,
                slo=spec["name"],
            )

    profile = snapshot.get("profile")
    if profile is not None:
        exp.family(
            "repro_serve_profile_events_total",
            "counter",
            "Access events seen by the continuous profiler's ordinal clock.",
        )
        exp.sample("repro_serve_profile_events_total", profile["events"])
        exp.family(
            "repro_serve_profile_samples_total",
            "counter",
            "Profile samples taken (per shard phase).",
        )
        for phase in sorted(profile["by_phase"]):
            exp.sample(
                "repro_serve_profile_samples_total",
                profile["by_phase"][phase],
                shard=phase,
            )
        exp.family(
            "repro_serve_profile_stride",
            "gauge",
            "Current profiler sampling stride (events per sample).",
        )
        exp.sample("repro_serve_profile_stride", profile["stride"])
        if profile.get("governor_tax") is not None:
            exp.family(
                "repro_serve_profile_tax",
                "gauge",
                "Profiling tax measured by the governor over its last window.",
            )
            exp.sample(
                "repro_serve_profile_tax", round(profile["governor_tax"], 6)
            )

    latency = snapshot.get("latency")
    if latency is not None:
        exp.family(
            "repro_serve_frame_latency_us",
            "histogram",
            "Wall-clock frame handling latency in microseconds.",
        )
        exp.histogram("repro_serve_frame_latency_us", latency["frame"])
        if latency["stages"]:
            exp.family(
                "repro_serve_stage_latency_us",
                "histogram",
                "Wall-clock per-stage latency in microseconds.",
            )
            for stage in sorted(latency["stages"]):
                exp.histogram(
                    "repro_serve_stage_latency_us",
                    latency["stages"][stage],
                    stage=stage,
                )

    return exp.render()
