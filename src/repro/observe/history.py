"""The bench-history ledger: one JSONL line per benchmark run.

Single-artifact BENCH files answer "what did the last run measure"; the
ledger answers "what has this machine measured *over time*", which is what
the statistical sentinel (:mod:`repro.observe.sentinel`) needs to separate
noise from regressions.  Every ``repro bench``, ``repro serve --bench`` and
``repro synth --score`` run appends one self-describing entry:

.. code-block:: json

    {"schema": "bench-history/1", "kind": "bench", "ordinal": 7,
     "meta": {"engine": "columnar", "preset": "train", "reps": 5, ...},
     "metrics": {"summary": {...}, "workloads": {"pcg": {"arbalest": 2.4}}}}

``ordinal`` is a monotonic per-ledger run counter (the sentinel's x-axis);
``meta`` carries the environment fingerprint (python/numpy versions,
platform) so cross-machine entries can be told apart — the sentinel refuses
to mix engines, and fingerprint changes are reported alongside verdicts.

The ledger is append-only JSONL so concurrent CI jobs can cat their shards
together, and :func:`seed_history` migrates the pre-ledger ``BENCH_*.json``
artifacts so history starts with whatever the repo already measured.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Iterable

import numpy as np

#: Schema tag stamped on every ledger line.
HISTORY_SCHEMA = "bench-history/1"

#: Default ledger path, tracked in-repo so history survives checkouts.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Artifact kinds the ledger accepts (mirrors ``forensics.diff`` sniffing).
HISTORY_KINDS = ("bench", "serve-bench", "synth-bench")


def env_fingerprint() -> dict:
    """The environment facts that make timings comparable (or not)."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def run_meta(
    *,
    engine: str,
    preset: str | None = None,
    reps: int | None = None,
    **extra,
) -> dict:
    """A self-describing ``meta`` block for a bench artifact/ledger entry."""
    meta = {"engine": engine}
    if preset is not None:
        meta["preset"] = preset
    if reps is not None:
        meta["reps"] = reps
    meta.update(env_fingerprint())
    for key, value in sorted(extra.items()):
        if value is not None:
            meta[key] = value
    return meta


def _bench_metrics(payload: dict) -> dict:
    workloads = {}
    for name, configs in payload.get("workloads", {}).items():
        cells = {}
        for config, cell in configs.items():
            if isinstance(cell, dict) and "slowdown" in cell:
                cells[config] = cell["slowdown"]
        if cells:
            workloads[name] = cells
    return {"summary": _numeric(payload.get("summary", {})), "workloads": workloads}


def _numeric(mapping: dict) -> dict:
    """Numeric cells only — bools are counters' cousins, not metrics."""
    return {
        key: value
        for key, value in mapping.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _serve_metrics(payload: dict) -> dict:
    metrics: dict = {"summary": _numeric(payload.get("summary", {}))}
    metrics["suite"] = payload.get("suite")
    metrics["delivery_ok"] = bool(payload.get("delivery_ok", False))
    for key in ("events", "frames", "stream_seconds"):
        value = payload.get(key)
        if isinstance(value, (int, float)):
            metrics[key] = value
    return metrics


def _synth_metrics(payload: dict) -> dict:
    summary = payload.get("summary", {})
    metrics: dict = {"summary": _numeric(summary) if isinstance(summary, dict) else {}}
    if isinstance(summary, dict):
        metrics["ok"] = bool(summary.get("ok", False))
    return metrics


def artifact_kind(payload: dict) -> str:
    """Classify a bench payload the same way ``forensics.diff`` sniffs it."""
    artifact = payload.get("artifact")
    if artifact == "serve-bench/1":
        return "serve-bench"
    if artifact == "synth-bench/1":
        return "synth-bench"
    if "workloads" in payload and "summary" in payload:
        return "bench"
    raise ValueError(
        "cannot classify artifact for the history ledger: "
        f"artifact={artifact!r}, keys={sorted(payload)[:8]}"
    )


def history_entry(payload: dict, *, meta: dict | None = None) -> dict:
    """Distil one bench payload into a ledger entry (without ordinal)."""
    kind = artifact_kind(payload)
    if kind == "bench":
        metrics = _bench_metrics(payload)
    elif kind == "serve-bench":
        metrics = _serve_metrics(payload)
    else:
        metrics = _synth_metrics(payload)
    if meta is None:
        meta = payload.get("meta")
    if meta is None:
        meta = run_meta(engine=str(payload.get("engine", "scalar")))
    return {
        "schema": HISTORY_SCHEMA,
        "kind": kind,
        "meta": meta,
        "metrics": metrics,
    }


def load_history(path: str, *, kind: str | None = None) -> list[dict]:
    """Load and validate ledger entries, optionally filtered by kind."""
    if kind is not None and kind not in HISTORY_KINDS:
        raise ValueError(f"unknown history kind {kind!r}: expected {HISTORY_KINDS}")
    entries: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if entry.get("schema") != HISTORY_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: schema {entry.get('schema')!r} is not "
                    f"{HISTORY_SCHEMA!r}"
                )
            if entry.get("kind") not in HISTORY_KINDS:
                raise ValueError(
                    f"{path}:{lineno}: unknown entry kind {entry.get('kind')!r}"
                )
            entries.append(entry)
    if kind is not None:
        entries = [entry for entry in entries if entry["kind"] == kind]
    return entries


def _next_ordinal(path: str) -> int:
    if not os.path.exists(path):
        return 1
    last = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                last = max(last, int(json.loads(line).get("ordinal", 0)))
            except (json.JSONDecodeError, TypeError, ValueError):
                continue  # ordinal scan is best-effort; load_history validates
    return last + 1


def append_history(path: str, payload: dict, *, meta: dict | None = None) -> dict:
    """Append one bench payload to the ledger; returns the written entry."""
    entry = history_entry(payload, meta=meta)
    entry = {
        "schema": entry["schema"],
        "kind": entry["kind"],
        "ordinal": _next_ordinal(path),
        "meta": entry["meta"],
        "metrics": entry["metrics"],
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def seed_history(path: str, artifacts: Iterable[str]) -> int:
    """Migrate pre-ledger ``BENCH_*.json`` artifacts into the ledger.

    Entries are marked ``seeded`` in their meta (their environment
    fingerprint is unknown — the artifact predates the ledger).  Returns
    the number of entries appended; unreadable or unclassifiable files are
    skipped rather than aborting the migration.
    """
    appended = 0
    for artifact in artifacts:
        try:
            with open(artifact, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            meta = payload.get("meta")
            if meta is None:
                meta = {
                    "engine": str(payload.get("engine", "scalar")),
                    "seeded": True,
                    "source": os.path.basename(artifact),
                }
                for key in ("preset", "repetitions"):
                    if key in payload:
                        meta["reps" if key == "repetitions" else key] = payload[key]
            append_history(path, payload, meta=meta)
            appended += 1
        except (OSError, ValueError):
            continue
    return appended
