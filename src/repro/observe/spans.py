"""Per-process span logs and cross-process trace stitching.

PR-3's :mod:`repro.telemetry` traces one process.  The serve stack is
logically *many*: the client that frames events, the server that orders
them, and the shard workers that analyze them — and once a frame crosses
the wire, the client's span and the shard's span describe the same unit of
work with no shared registry to relate them.

This module closes that gap with two pieces:

* :class:`SpanLog` — one process's span stream.  Each participant (the
  client, the protocol engine, every shard worker) owns one, named after
  the process it models (``client``, ``server``, ``shard-0`` ...).  Spans
  are stamped with the log's own event-ordinal clock, so a deterministic
  session produces a byte-identical log — the telemetry discipline,
  extended across the wire.
* :func:`stitch_traces` — merges any number of span logs into **one**
  Chrome Trace Event document, one ``pid`` per process (named via ``M``
  metadata events).  Spans are correlated by their ``(client, seq)`` tags:
  the client's ``frame:EVENT`` span, the server's ``handle:EVENT`` span,
  and the shard's ``apply`` span for the same frame all carry the same
  pair, and a journal-replay re-execution span carries a
  ``replayed_from`` tag naming the original ``client:seq`` it re-ran.

The wire's trace context (:class:`repro.events.wire.TraceContext`) rides
in span tags too: the server records the client-side span ordinal each
frame propagated, proving the cross-process link survived the transport.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

__all__ = ["SpanLog", "stitch_traces", "write_stitched_trace", "spans_by_frame"]


class _SpanHandle:
    """One open span: context manager collecting tags until exit."""

    __slots__ = ("_log", "name", "cat", "tags", "begin")

    def __init__(self, log: "SpanLog", name: str, cat: str, tags: dict):
        self._log = log
        self.name = name
        self.cat = cat
        self.tags = tags
        self.begin = 0

    def __enter__(self) -> "_SpanHandle":
        self.begin = self._log.tick()
        return self

    def __exit__(self, *exc) -> bool:
        end = self._log.tick()
        record: dict = {
            "name": self.name,
            "cat": self.cat,
            "b": self.begin,
            "e": end,
        }
        tags = {k: v for k, v in self.tags.items() if v is not None}
        if tags:
            record["tags"] = tags
        self._log.spans.append(record)
        return False


class SpanLog:
    """One logical process's span stream, on its own ordinal clock."""

    def __init__(self, process: str):
        self.process = process
        self.spans: list[dict] = []
        self.ordinal = 0

    def tick(self) -> int:
        self.ordinal += 1
        return self.ordinal

    def span(self, name: str, *, cat: str = "serve", **tags) -> _SpanHandle:
        """Open a span; mutate ``handle.tags`` inside the block to annotate.

        ``handle.begin`` is the begin ordinal — the client uses it as the
        propagated span id in the wire trace context.
        """
        return _SpanHandle(self, name, cat, tags)

    def __len__(self) -> int:
        return len(self.spans)


def stitch_traces(logs: Iterable[SpanLog]) -> dict:
    """Merge per-process span logs into one Chrome Trace Event document.

    Process ids are assigned by sorted process name (``client`` < ``server``
    < ``shard-0`` ...), so the stitched document is byte-identical across
    runs whenever each participant's span log is.  Every span becomes one
    complete (``X``-phase) event whose ``args`` carry its tags — the
    ``client``/``seq`` correlation key, the propagated trace context, and
    ``replayed_from`` links — so Perfetto's query pane (or plain ``jq``)
    can join one frame's client, server, and shard slices.
    """
    ordered = sorted(logs, key=lambda log: log.process)
    events: list[dict] = []
    for pid, log in enumerate(ordered):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": log.process},
            }
        )
        for span in log.spans:
            event = {
                "name": span["name"],
                "cat": span["cat"],
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": span["b"],
                "dur": span["e"] - span["b"],
            }
            tags = span.get("tags")
            if tags:
                event["args"] = {k: tags[k] for k in sorted(tags)}
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "ordinal",
            "producer": "repro.observe",
            "processes": [log.process for log in ordered],
        },
    }


def write_stitched_trace(logs: Iterable[SpanLog], sink: IO[str]) -> dict:
    """Stitch and serialize (sorted keys — byte-stable); returns the doc."""
    document = stitch_traces(logs)
    json.dump(document, sink, indent=2, sort_keys=True)
    sink.write("\n")
    return document


def spans_by_frame(document: dict) -> dict[tuple[int, int], list[dict]]:
    """Index a stitched document's spans by their ``(client, seq)`` key.

    The assertion helper for tests and the CI observability job: the
    cross-process story holds exactly when one frame's key maps to spans
    from more than one ``pid``.
    """
    index: dict[tuple[int, int], list[dict]] = {}
    for event in document["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        if "client" in args and "seq" in args:
            index.setdefault((args["client"], args["seq"]), []).append(event)
    return index
