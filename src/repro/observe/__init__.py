"""``repro.observe`` — live operational observability for the serve stack.

PR-3's :mod:`repro.telemetry` measures one *run* after the fact; this
package watches a *service* while it is up:

* :mod:`~repro.observe.log` — structured JSONL event logging with the
  ``ACTIVE``/``scope`` zero-overhead discipline;
* :mod:`~repro.observe.spans` — per-process span logs and the stitcher
  that merges client, server, and shard spans into one cross-process
  Chrome trace, correlated by ``(client, seq)``;
* :mod:`~repro.observe.slo` — declarative SLO specs and the burn/clear
  watchdog behind ``/healthz``;
* :mod:`~repro.observe.observer` — the per-server bundle wiring all of
  the above into the serve hot path;
* :mod:`~repro.observe.metrics` — service-level snapshots and the
  Prometheus text exposition served at ``/metrics``;
* :mod:`~repro.observe.health` — the ``/healthz`` and ``/readyz``
  documents;
* :mod:`~repro.observe.top` — the ``repro top`` scrape-and-render
  client.
"""

from .flame import parse_folded, render_flamegraph, write_flamegraph
from .health import healthz, readyz
from .history import (
    DEFAULT_HISTORY,
    HISTORY_SCHEMA,
    append_history,
    env_fingerprint,
    history_entry,
    load_history,
    run_meta,
    seed_history,
)
from .log import ObserveLog
from .metrics import render_prometheus, service_snapshot
from .observer import ServeObserver, histogram_quantile
from .prof import Governor, Profiler
from .prof import scope as prof_scope
from .sentinel import (
    bootstrap_shift_ci,
    mann_whitney,
    metric_direction,
    noise_thresholds,
    render_sentinel,
    run_sentinel,
)
from .slo import CHAOS_SLOS, DEFAULT_SLOS, SLOSpec, SLOWatchdog
from .spans import SpanLog, spans_by_frame, stitch_traces, write_stitched_trace
from .top import run_top

__all__ = [
    "CHAOS_SLOS",
    "DEFAULT_HISTORY",
    "DEFAULT_SLOS",
    "Governor",
    "HISTORY_SCHEMA",
    "ObserveLog",
    "Profiler",
    "SLOSpec",
    "SLOWatchdog",
    "ServeObserver",
    "SpanLog",
    "append_history",
    "bootstrap_shift_ci",
    "env_fingerprint",
    "healthz",
    "histogram_quantile",
    "history_entry",
    "load_history",
    "mann_whitney",
    "metric_direction",
    "noise_thresholds",
    "parse_folded",
    "prof_scope",
    "readyz",
    "render_flamegraph",
    "render_prometheus",
    "render_sentinel",
    "run_meta",
    "run_sentinel",
    "run_top",
    "seed_history",
    "service_snapshot",
    "spans_by_frame",
    "stitch_traces",
    "write_flamegraph",
    "write_stitched_trace",
]
