"""``repro.observe`` — live operational observability for the serve stack.

PR-3's :mod:`repro.telemetry` measures one *run* after the fact; this
package watches a *service* while it is up:

* :mod:`~repro.observe.log` — structured JSONL event logging with the
  ``ACTIVE``/``scope`` zero-overhead discipline;
* :mod:`~repro.observe.spans` — per-process span logs and the stitcher
  that merges client, server, and shard spans into one cross-process
  Chrome trace, correlated by ``(client, seq)``;
* :mod:`~repro.observe.slo` — declarative SLO specs and the burn/clear
  watchdog behind ``/healthz``;
* :mod:`~repro.observe.observer` — the per-server bundle wiring all of
  the above into the serve hot path;
* :mod:`~repro.observe.metrics` — service-level snapshots and the
  Prometheus text exposition served at ``/metrics``;
* :mod:`~repro.observe.health` — the ``/healthz`` and ``/readyz``
  documents;
* :mod:`~repro.observe.top` — the ``repro top`` scrape-and-render
  client.
"""

from .health import healthz, readyz
from .log import ObserveLog
from .metrics import render_prometheus, service_snapshot
from .observer import ServeObserver, histogram_quantile
from .slo import CHAOS_SLOS, DEFAULT_SLOS, SLOSpec, SLOWatchdog
from .spans import SpanLog, spans_by_frame, stitch_traces, write_stitched_trace
from .top import run_top

__all__ = [
    "CHAOS_SLOS",
    "DEFAULT_SLOS",
    "ObserveLog",
    "SLOSpec",
    "SLOWatchdog",
    "ServeObserver",
    "SpanLog",
    "healthz",
    "histogram_quantile",
    "readyz",
    "render_prometheus",
    "run_top",
    "service_snapshot",
    "spans_by_frame",
    "stitch_traces",
    "write_stitched_trace",
]
