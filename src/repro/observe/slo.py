"""Declarative SLOs and the watchdog that evaluates them.

An SLO here is one inequality over a service-level metric, evaluated over
a *window* of frames: the p99 frame handling latency, the redelivery rate
(duplicate + shed + crash-redelivered frames per inbound frame), and the
reorder-queue occupancy (fraction of the per-session cap in use).  The
watchdog evaluates every spec on a deterministic cadence — every N
handled frames, plus a forced evaluation at session FIN so recovery is
observed even when the tail of the stream is shorter than a window.

Burns are *stateful*: a spec whose metric exceeds its threshold in a
window starts burning (one ``slo.burn`` JSONL event, naming the SLO, the
metric, the observed value and the threshold) and keeps burning until a
later window satisfies it again (one ``slo.clear`` event).  ``/healthz``
reports degraded exactly while at least one spec burns — the chaos
campaign drives the full healthy → degraded → healthy arc across an
injected fault and asserts both transitions from the log.

Determinism: the latency SLO consumes the wall clock (it is the
operational edge — the whole point is real microseconds), so latency
burns are environment-dependent; the redelivery and occupancy SLOs are
pure functions of the frame sequence and evaluate identically run to run.
Chaos assertions therefore pin on the deterministic pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from .log import ObserveLog

__all__ = ["SLOSpec", "SLOWatchdog", "DEFAULT_SLOS", "CHAOS_SLOS"]


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective: ``metric <= threshold`` per window."""

    #: Operator-facing name, reported by ``/healthz`` while burning.
    name: str
    #: Which windowed metric to test; one of the keys produced by
    #: :meth:`repro.observe.observer.ServeObserver.window_sample`.
    metric: str
    #: Inclusive upper bound; a window whose metric exceeds it burns.
    threshold: float

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SLOSpec":
        return cls(data["name"], data["metric"], data["threshold"])


#: Production defaults: generous enough that a healthy serve bench never
#: burns, tight enough that a redelivery storm or a saturated reorder
#: queue does.
DEFAULT_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec("p99-frame-latency", "p99_frame_latency_us", 50_000.0),
    SLOSpec("redelivery-rate", "redelivery_rate", 0.25),
    SLOSpec("queue-occupancy", "queue_occupancy", 0.9),
)

#: Chaos-campaign SLOs: deterministic metrics only, with thresholds
#: aggressive enough that injected frame faults reliably burn them.
CHAOS_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec("redelivery-rate", "redelivery_rate", 0.0),
    SLOSpec("queue-occupancy", "queue_occupancy", 0.9),
)


class SLOWatchdog:
    """Evaluates SLO specs over windowed samples; tracks burn state."""

    def __init__(
        self,
        specs: tuple[SLOSpec, ...] = DEFAULT_SLOS,
        *,
        log: ObserveLog | None = None,
    ):
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.specs = tuple(specs)
        self.log = log
        #: Burning specs: name -> the sample values that lit them.
        self.burning: dict[str, dict] = {}
        self.evaluations = 0
        self.burn_events = 0
        self.clear_events = 0
        #: Every evaluation's verdict, in order (bounded by the caller's
        #: cadence; a full serve bench produces a few hundred).
        self.verdicts: list[dict] = []

    @property
    def healthy(self) -> bool:
        return not self.burning

    def evaluate(self, sample: dict) -> dict:
        """Judge one window; returns (and records) the verdict.

        ``sample`` maps metric names to window values; a spec whose metric
        is absent from the sample is skipped (e.g. the latency SLO when
        the wall clock is off), never burned by default.
        """
        self.evaluations += 1
        burning_now: list[str] = []
        for spec in self.specs:
            value = sample.get(spec.metric)
            if value is None:
                continue
            if value > spec.threshold:
                burning_now.append(spec.name)
                if spec.name not in self.burning:
                    self.burning[spec.name] = {
                        "metric": spec.metric,
                        "value": value,
                        "threshold": spec.threshold,
                        "evaluation": self.evaluations,
                    }
                    self.burn_events += 1
                    if self.log is not None:
                        self.log.event(
                            "slo.burn",
                            slo=spec.name,
                            metric=spec.metric,
                            value=round(value, 6),
                            threshold=spec.threshold,
                            evaluation=self.evaluations,
                        )
            elif spec.name in self.burning:
                del self.burning[spec.name]
                self.clear_events += 1
                if self.log is not None:
                    self.log.event(
                        "slo.clear",
                        slo=spec.name,
                        metric=spec.metric,
                        value=round(value, 6),
                        threshold=spec.threshold,
                        evaluation=self.evaluations,
                    )
        verdict = {
            "evaluation": self.evaluations,
            "frames": sample.get("frames", 0),
            "burning": sorted(self.burning),
        }
        self.verdicts.append(verdict)
        return verdict

    def stats(self) -> dict:
        return {
            "specs": [s.to_json() for s in self.specs],
            "evaluations": self.evaluations,
            "burn_events": self.burn_events,
            "clear_events": self.clear_events,
            "burning": sorted(self.burning),
        }

    def health_transitions(self) -> list[str]:
        """The healthz status arc implied by the verdict history.

        Starts ``ok``; appends a status every time the burning set flips
        between empty and non-empty — the chaos campaign asserts the
        ``["ok", "degraded", "ok"]`` arc across an injected fault.
        """
        arc = ["ok"]
        for verdict in self.verdicts:
            status = "degraded" if verdict["burning"] else "ok"
            if status != arc[-1]:
                arc.append(status)
        return arc
