"""Self-contained flamegraph HTML from folded-stack text.

One input format — the profiler's folded export (``frame;frame;... weight``,
one stack per line, weight after the last space) — one output: a single HTML
file with zero external dependencies (no d3, no CDN fetch), suitable for a
CI artifact.  Rendering is plain nested ``<div>`` rows sized by percentage
width, with hover tooltips and click-to-zoom handled by ~30 lines of inline
JavaScript over an embedded JSON tree.

Output is deterministic: children are sorted by name, colors are hashed from
the frame name, and no timestamps are embedded — the flamegraph for a
fixed-stride profile is as byte-stable as the folded text itself.
"""

from __future__ import annotations

import html as _html
import json


def parse_folded(text: str) -> dict:
    """Fold lines into a tree ``{name, value, children: {...}}``.

    Lines that do not end in ``<space><int>`` are rejected — a truncated
    profile artifact should fail loudly, not render an empty graph.
    """
    root: dict = {"name": "all", "value": 0, "children": {}}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_text, sep, count_text = line.rpartition(" ")
        if not sep:
            raise ValueError(f"folded line {lineno} has no weight: {line!r}")
        try:
            weight = int(count_text)
        except ValueError:
            raise ValueError(
                f"folded line {lineno} weight is not an integer: {count_text!r}"
            ) from None
        if weight < 0:
            raise ValueError(f"folded line {lineno} weight is negative: {weight}")
        root["value"] += weight
        node = root
        for frame in stack_text.split(";"):
            child = node["children"].get(frame)
            if child is None:
                child = {"name": frame, "value": 0, "children": {}}
                node["children"][frame] = child
            child["value"] += weight
            node = child
    return root


def _to_jsonable(node: dict) -> dict:
    return {
        "name": node["name"],
        "value": node["value"],
        "children": [
            _to_jsonable(node["children"][name]) for name in sorted(node["children"])
        ],
    }


_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
body { font: 12px monospace; margin: 12px; background: #1c1c22; color: #ddd; }
h1 { font-size: 14px; }
#meta { color: #888; margin-bottom: 8px; }
#graph { width: 100%; }
.row { display: flex; height: 18px; }
.frame {
  box-sizing: border-box; overflow: hidden; white-space: nowrap;
  border: 1px solid #1c1c22; border-radius: 2px; padding: 1px 3px;
  cursor: pointer; color: #222;
}
.frame:hover { border-color: #fff; }
.pad { visibility: hidden; }
#crumb { margin: 6px 0; color: #9cf; cursor: pointer; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="meta">total weight __TOTAL__ · stacks are benchmark;phase;tool;frames, root at top</div>
<div id="crumb"></div>
<div id="graph"></div>
<script>
const ROOT = __DATA__;
let zoom = ROOT;
function color(name) {
  let h = 2166136261;
  for (let i = 0; i < name.length; i++) { h ^= name.charCodeAt(i); h = (h * 16777619) >>> 0; }
  return `hsl(${20 + (h % 40)}, ${70 + (h >> 8) % 25}%, ${52 + (h >> 16) % 16}%)`;
}
function render() {
  const graph = document.getElementById('graph');
  graph.textContent = '';
  const rows = [];
  (function walk(node, depth, offset) {
    if (!rows[depth]) rows[depth] = [];
    rows[depth].push({node, offset});
    let childOffset = offset;
    for (const child of node.children) { walk(child, depth + 1, childOffset); childOffset += child.value; }
  })(zoom, 0, 0);
  const total = zoom.value || 1;
  for (const cells of rows) {
    const row = document.createElement('div');
    row.className = 'row';
    let cursor = 0;
    for (const {node, offset} of cells) {
      if (offset > cursor) {
        const pad = document.createElement('div');
        pad.className = 'frame pad';
        pad.style.width = (100 * (offset - cursor) / total) + '%';
        row.appendChild(pad);
      }
      const cell = document.createElement('div');
      cell.className = 'frame';
      cell.style.width = (100 * node.value / total) + '%';
      cell.style.background = color(node.name);
      cell.textContent = node.name;
      cell.title = node.name + ' — weight ' + node.value + ' (' + (100 * node.value / total).toFixed(2) + '%)';
      cell.onclick = () => { zoom = node; render(); };
      row.appendChild(cell);
      cursor = offset + node.value;
    }
    graph.appendChild(row);
  }
  const crumb = document.getElementById('crumb');
  crumb.textContent = zoom === ROOT ? '' : '⟵ reset zoom (' + zoom.name + ')';
  crumb.onclick = () => { zoom = ROOT; render(); };
}
render();
</script>
</body>
</html>
"""


def render_flamegraph(folded: str, *, title: str = "repro profile") -> str:
    """Render folded-stack text as a self-contained flamegraph HTML page."""
    tree = _to_jsonable(parse_folded(folded))
    page = _TEMPLATE.replace("__TITLE__", _html.escape(title))
    page = page.replace("__TOTAL__", str(tree["value"]))
    return page.replace("__DATA__", json.dumps(tree, separators=(",", ":")))


def write_flamegraph(path: str, folded: str, *, title: str = "repro profile") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_flamegraph(folded, title=title))
