"""Self-balancing interval tree with a last-lookup cache.

ARBALEST "uses an interval tree to maintain the relationship between OV and
CV" (§IV.C): every device access must find, from a raw device address, the
mapped section it belongs to, in O(log m) for m live mappings — and because
kernels hammer the same few arrays, the paper amortizes that to O(1) with a
cache of the latest lookup.

The tree stores *non-overlapping, half-open* intervals ``[lo, hi)`` with an
arbitrary payload.  Balancing is AVL (height-bound 1.44·log2 m); since the
intervals never overlap, a stabbing query is a plain ordered descent, and
the classic max-endpoint augmentation is kept only to support overlap
queries used by input validation.

This one structure serves two masters: the CV→mapping lookup inside the
detector, and the host-address→shadow-block lookup, each with its own cache.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, TypeVar

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("lo", "hi", "value", "left", "right", "height", "max_hi")

    def __init__(self, lo: int, hi: int, value: T):
        self.lo = lo
        self.hi = hi
        self.value = value
        self.left: "_Node[T] | None" = None
        self.right: "_Node[T] | None" = None
        self.height = 1
        self.max_hi = hi


def _h(node: "_Node[T] | None") -> int:
    return node.height if node is not None else 0


def _fix(node: "_Node[T]") -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))
    node.max_hi = node.hi
    if node.left is not None and node.left.max_hi > node.max_hi:
        node.max_hi = node.left.max_hi
    if node.right is not None and node.right.max_hi > node.max_hi:
        node.max_hi = node.right.max_hi


def _rot_right(y: "_Node[T]") -> "_Node[T]":
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _fix(y)
    _fix(x)
    return x


def _rot_left(x: "_Node[T]") -> "_Node[T]":
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _fix(x)
    _fix(y)
    return y


def _balance(node: "_Node[T]") -> "_Node[T]":
    _fix(node)
    bf = _h(node.left) - _h(node.right)
    if bf > 1:
        assert node.left is not None
        if _h(node.left.left) < _h(node.left.right):
            node.left = _rot_left(node.left)
        return _rot_right(node)
    if bf < -1:
        assert node.right is not None
        if _h(node.right.right) < _h(node.right.left):
            node.right = _rot_right(node.right)
        return _rot_left(node)
    return node


class IntervalTree(Generic[T]):
    """Non-overlapping half-open intervals keyed by ``lo``, AVL-balanced."""

    def __init__(self) -> None:
        self._root: "_Node[T] | None" = None
        self._len = 0
        # Last successful stab, for the amortized-O(1) fast path.
        self._cached: "_Node[T] | None" = None
        self.cache_hits = 0
        self.cache_misses = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # -- mutation ----------------------------------------------------------

    def insert(self, lo: int, hi: int, value: T) -> None:
        """Insert ``[lo, hi)``; overlap with an existing interval is an error."""
        if lo >= hi:
            raise ValueError(f"empty interval [{lo}, {hi})")
        if self.first_overlap(lo, hi) is not None:
            raise ValueError(f"[{lo:#x}, {hi:#x}) overlaps an existing interval")
        self._root = self._insert(self._root, lo, hi, value)
        self._len += 1

    def _insert(self, node: "_Node[T] | None", lo: int, hi: int, value: T) -> "_Node[T]":
        if node is None:
            return _Node(lo, hi, value)
        if lo < node.lo:
            node.left = self._insert(node.left, lo, hi, value)
        else:
            node.right = self._insert(node.right, lo, hi, value)
        return _balance(node)

    def remove(self, lo: int) -> T:
        """Remove the interval whose low endpoint is ``lo``; returns payload."""
        removed: list[T] = []
        self._root = self._remove(self._root, lo, removed)
        if not removed:
            raise KeyError(f"no interval starts at {lo:#x}")
        self._len -= 1
        if self._cached is not None and self._cached.lo == lo:
            self._cached = None
        return removed[0]

    def _remove(
        self, node: "_Node[T] | None", lo: int, removed: list[T]
    ) -> "_Node[T] | None":
        if node is None:
            return None
        if lo < node.lo:
            node.left = self._remove(node.left, lo, removed)
        elif lo > node.lo:
            node.right = self._remove(node.right, lo, removed)
        else:
            removed.append(node.value)
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Replace with in-order successor.
            succ = node.right
            while succ.left is not None:
                succ = succ.left
            node.lo, node.hi, node.value = succ.lo, succ.hi, succ.value
            # Detach the successor (its payload was moved up; drop into a
            # throwaway list so `removed` keeps the original payload).
            node.right = self._remove(node.right, succ.lo, [])
        return _balance(node)

    # -- queries -------------------------------------------------------------

    def stab(self, point: int) -> T | None:
        """Payload of the interval containing ``point``, or ``None``.

        Amortized O(1): the previous hit is re-checked before descending.
        """
        cached = self._cached
        if cached is not None and cached.lo <= point < cached.hi:
            self.cache_hits += 1
            return cached.value
        self.cache_misses += 1
        node = self._root
        while node is not None:
            if point < node.lo:
                node = node.left
            elif point >= node.hi:
                node = node.right
            else:
                self._cached = node
                return node.value
        return None

    def interval_of(self, point: int) -> tuple[int, int, T] | None:
        """``(lo, hi, payload)`` of the interval containing ``point``."""
        cached = self._cached
        if cached is not None and cached.lo <= point < cached.hi:
            self.cache_hits += 1
            return cached.lo, cached.hi, cached.value
        self.cache_misses += 1
        node = self._root
        while node is not None:
            if point < node.lo:
                node = node.left
            elif point >= node.hi:
                node = node.right
            else:
                self._cached = node
                return node.lo, node.hi, node.value
        return None

    def first_overlap(self, lo: int, hi: int) -> tuple[int, int, T] | None:
        """Any stored interval overlapping ``[lo, hi)``, using ``max_hi``."""
        node = self._root
        while node is not None:
            if node.left is not None and node.left.max_hi > lo:
                node = node.left
                continue
            if node.lo < hi and lo < node.hi:
                return node.lo, node.hi, node.value
            if node.lo >= hi:
                return None
            node = node.right
        return None

    def items(self) -> Iterator[tuple[int, int, T]]:
        """All intervals in increasing order of ``lo``."""

        def walk(node: "_Node[T] | None") -> Iterator[tuple[int, int, T]]:
            if node is None:
                return
            yield from walk(node.left)
            yield (node.lo, node.hi, node.value)
            yield from walk(node.right)

        return walk(self._root)

    def clear_cache(self) -> None:
        """Drop the last-lookup cache (ablation A2 disables it this way)."""
        self._cached = None

    @property
    def height(self) -> int:
        return _h(self._root)
