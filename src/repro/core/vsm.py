"""Scalar reference implementation of the variable state machine.

:class:`VariableStateMachine` tracks a *single* granule, readably and
slowly; the production path is the vectorized shadow in
:mod:`repro.core.shadow`.  Property-based tests assert the two agree on
arbitrary operation sequences, so this module is the executable
specification of Figure 4.

Beyond the four VSM states, the machine carries the two "initialized" bits
of Table II, which let the detector tell a use of *uninitialized* memory
(the reading side was never written at all) from a use of *stale* data (it
was written, but the last write lives on the other side).
"""

from __future__ import annotations

from dataclasses import dataclass

from .states import ILLEGAL, TRANSITIONS, VsmOp, VsmState


def transition_matrix():
    """Figure 4 as a dense ``(op, state) -> state'`` uint8 numpy matrix.

    Row ``op``, column ``state`` holds the successor state code; this is the
    table the columnar engine gathers whole event batches through (and the
    cross-check for :data:`repro.core.shadow.TRANS_LUT`).
    """
    import numpy as np

    m = np.zeros((len(VsmOp), len(VsmState)), dtype=np.uint8)
    for op in VsmOp:
        for st in VsmState:
            m[op, st] = int(TRANSITIONS[op][st])
    return m


def illegal_matrix():
    """Figure 4's illegal cells as a dense ``(op, state)`` boolean matrix."""
    import numpy as np

    m = np.zeros((len(VsmOp), len(VsmState)), dtype=bool)
    for op in VsmOp:
        for st in VsmState:
            m[op, st] = ILLEGAL[op][st]
    return m


@dataclass
class VsmVerdict:
    """Outcome of applying one operation."""

    state: VsmState
    illegal: bool
    #: Set only when ``illegal``: was the offending read uninitialized (UUM)
    #: rather than stale (USD)?
    uninitialized: bool = False


class VariableStateMachine:
    """One granule's state, plus Table II's initialization bits."""

    __slots__ = ("state", "ov_initialized", "cv_initialized")

    def __init__(self) -> None:
        self.state = VsmState.INVALID
        self.ov_initialized = False
        self.cv_initialized = False

    def apply(self, op: VsmOp) -> VsmVerdict:
        """Apply ``op``; returns the verdict (next state + issue flags)."""
        illegal = ILLEGAL[op][self.state]
        uninitialized = False
        if illegal:
            # Classify by the reading side's initialization history.
            side_initialized = (
                self.ov_initialized if op is VsmOp.READ_HOST else self.cv_initialized
            )
            uninitialized = not side_initialized
        self.state = TRANSITIONS[op][self.state]
        self._track_initialization(op)
        return VsmVerdict(self.state, illegal, uninitialized)

    def _track_initialization(self, op: VsmOp) -> None:
        if op is VsmOp.WRITE_HOST:
            self.ov_initialized = True
        elif op is VsmOp.WRITE_TARGET:
            self.cv_initialized = True
        elif op is VsmOp.UPDATE_HOST:
            # OV now holds whatever the CV held.
            self.ov_initialized = self.cv_initialized
        elif op is VsmOp.UPDATE_TARGET:
            self.cv_initialized = self.ov_initialized
        elif op in (VsmOp.ALLOCATE, VsmOp.RELEASE):
            # A fresh CV holds garbage; a released one holds nothing.
            self.cv_initialized = False

    def __repr__(self) -> str:
        return (
            f"VSM({self.state.name}, ov_init={self.ov_initialized}, "
            f"cv_init={self.cv_initialized})"
        )
