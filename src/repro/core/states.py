"""VSM vocabulary: states, operations, and the Fig-4 transition relation.

The variable state machine (§IV.A-B) tracks, per tracked granule, which of
the two storage locations — original variable (OV, host) and corresponding
variable (CV, accelerator) — currently holds the last write:

* ``INVALID``     neither location has a valid value;
* ``HOST``        only the OV is valid;
* ``TARGET``      only the CV is valid;
* ``CONSISTENT``  both are valid and equal.

The state encodes exactly the pair ``(IsOVValid, IsCVValid)`` of Table II,
which is why the numeric values below are chosen so bit 0 = OV validity and
bit 1 = CV validity.

Transitions are driven by eight operations; the table in
:data:`TRANSITIONS` is a verbatim transcription of Figure 4 with the three
issue-triggering situations (reads with no outgoing edge) marked as
:data:`ILLEGAL`.
"""

from __future__ import annotations

import enum


class VsmState(enum.IntEnum):
    """VSM states; value bits are (IsCVValid << 1) | IsOVValid."""

    INVALID = 0b00
    HOST = 0b01
    TARGET = 0b10
    CONSISTENT = 0b11

    @property
    def ov_valid(self) -> bool:
        return bool(self.value & 0b01)

    @property
    def cv_valid(self) -> bool:
        return bool(self.value & 0b10)


class VsmOp(enum.IntEnum):
    """Operations that drive VSM transitions (§IV.A)."""

    READ_HOST = 0
    READ_TARGET = 1
    WRITE_HOST = 2
    WRITE_TARGET = 3
    #: Memory transfer CV -> OV (synchronize using the value in CV).
    UPDATE_HOST = 4
    #: Memory transfer OV -> CV (synchronize using the value in OV).
    UPDATE_TARGET = 5
    ALLOCATE = 6
    RELEASE = 7


_I, _H, _T, _C = (
    VsmState.INVALID,
    VsmState.HOST,
    VsmState.TARGET,
    VsmState.CONSISTENT,
)

#: ``TRANSITIONS[op][state] -> next state``.  For the illegal read
#: situations the state is left unchanged (the detector reports and keeps
#: going, matching the tool's keep-running behaviour).
TRANSITIONS: dict[VsmOp, dict[VsmState, VsmState]] = {
    VsmOp.READ_HOST: {_I: _I, _H: _H, _T: _T, _C: _C},
    VsmOp.READ_TARGET: {_I: _I, _H: _H, _T: _T, _C: _C},
    VsmOp.WRITE_HOST: {_I: _H, _H: _H, _T: _H, _C: _H},
    VsmOp.WRITE_TARGET: {_I: _T, _H: _T, _T: _T, _C: _T},
    # update_host overwrites OV with CV's content: from HOST that *destroys*
    # the only valid value; from TARGET it synchronizes.
    VsmOp.UPDATE_HOST: {_I: _I, _H: _I, _T: _C, _C: _C},
    # update_target overwrites CV with OV's content, symmetrically.
    VsmOp.UPDATE_TARGET: {_I: _I, _H: _C, _T: _I, _C: _C},
    VsmOp.ALLOCATE: {_I: _I, _H: _H, _T: _T, _C: _C},
    # release destroys the CV: a valid-only-in-CV value is lost.
    VsmOp.RELEASE: {_I: _I, _H: _H, _T: _I, _C: _H},
}

#: ``ILLEGAL[op][state]`` — the three data-mapping-issue situations
#: (§IV.B): a read in INVALID, a device read in HOST, a host read in TARGET.
ILLEGAL: dict[VsmOp, dict[VsmState, bool]] = {
    op: {s: False for s in VsmState} for op in VsmOp
}
ILLEGAL[VsmOp.READ_HOST][_I] = True
ILLEGAL[VsmOp.READ_HOST][_T] = True
ILLEGAL[VsmOp.READ_TARGET][_I] = True
ILLEGAL[VsmOp.READ_TARGET][_H] = True
