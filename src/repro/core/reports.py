"""Fig-7-style bug reports.

ARBALEST reuses Archer's (ThreadSanitizer's) report template; Figure 7 of
the paper shows the shape: a WARNING banner naming the anomaly, the access
with its stack trace, and the heap block the address belongs to with *its*
allocation stack.  :class:`BugReport` carries the structured pieces;
:func:`render_report` produces the text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..events.source import SourceLocation, UNKNOWN_LOCATION
from ..tools.findings import Finding, FindingKind


class Anomaly(enum.Enum):
    """Observed anomaly wording, as printed in the report banner."""

    STALE = "data mapping issue (stale access)"
    UNINIT = "data mapping issue (use of uninitialized memory)"
    OVERFLOW = "data mapping issue (buffer overflow on corresponding variable)"
    RACE = "data race"

    @classmethod
    def for_kind(cls, kind: FindingKind) -> "Anomaly":
        return {
            FindingKind.USD: cls.STALE,
            FindingKind.UUM: cls.UNINIT,
            FindingKind.BO: cls.OVERFLOW,
            FindingKind.WILD: cls.OVERFLOW,
            FindingKind.RACE: cls.RACE,
        }[kind]


@dataclass(frozen=True)
class BlockInfo:
    """The allocation the offending address belongs to."""

    base: int
    nbytes: int
    label: str = ""
    stack: tuple[SourceLocation, ...] = (UNKNOWN_LOCATION,)


@dataclass(frozen=True)
class BugReport:
    """One full ARBALEST report (a Finding plus its context)."""

    finding: Finding
    anomaly: Anomaly
    block: BlockInfo | None = None
    #: Extra free-form context lines ("mapped section", "VSM state", ...).
    notes: tuple[str, ...] = ()

    def render(self, pid: int = 0) -> str:
        return render_report(self, pid=pid)


def _render_stack(stack: tuple[SourceLocation, ...]) -> list[str]:
    lines = []
    for depth, frame in enumerate(stack):
        col = f":{frame.column}" if frame.column else ""
        lines.append(f"    #{depth} {frame.function} {frame.file}:{frame.line}{col}")
    return lines


def render_report(report: BugReport, *, pid: int = 0) -> str:
    """Render in the ThreadSanitizer-derived template of Figure 7."""
    f = report.finding
    action = "Read" if f.kind in (FindingKind.USD, FindingKind.UUM) else "Access"
    lines = [
        "==================",
        f"WARNING: ThreadSanitizer: {report.anomaly.value} (pid={pid})",
        f"  {action} of size {f.size or 8} at {f.address:#x} by thread T{f.thread_id}"
        + (f" on device {f.device_id}" if f.device_id else " (main thread)")
        + ":",
    ]
    lines += _render_stack(f.stack)
    if report.block is not None:
        b = report.block
        label = f" ('{b.label}')" if b.label else ""
        lines.append("")
        lines.append(
            f"  Location is heap block of size {b.nbytes} at {b.base:#x}{label} "
            "allocated by main thread:"
        )
        lines += _render_stack(b.stack)
    for note in report.notes:
        lines.append(f"  note: {note}")
    loc = f.location
    lines.append(
        f"SUMMARY: ThreadSanitizer: {report.anomaly.value} "
        f"{loc.file}:{loc.line} in {loc.function}"
    )
    lines.append("==================")
    return "\n".join(lines)
