"""Theorem-1 certification: data-mapping-issue-freedom for async programs.

§IV.E of the paper: VSM precisely reports the issues of the *observed*
schedule, but a program with asynchronous (``nowait``) compute kernels has
many schedules.  Theorem 1 gives the sound check:

    the program is free of data mapping issues in **every** schedule iff
    (1) it is data-race free, and
    (2) VSM reports no issue when all asynchronous kernels are executed
        synchronously.

:func:`certify` runs the program twice on fresh machines:

* once under the caller's schedule with full ARBALEST attached (races +
  VSM — hypothesis 1 uses the race engine; HB edges are schedule-invariant
  so any schedule serves for race detection);
* once with every nowait downgraded to synchronous (hypothesis 2) — done
  by machine configuration, the program is not modified.

The verdict lists which hypothesis failed with the supporting findings, so
the result is explainable, not a bare boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..openmp.runtime import Machine, TargetRuntime
from ..openmp.scheduler import Schedule
from ..tools.findings import Finding
from .detector import Arbalest

#: A certifiable program: receives a fresh runtime, builds and runs itself.
Program = Callable[[TargetRuntime], None]


class _SynchronizingRuntime(TargetRuntime):
    """A runtime that executes every target region synchronously.

    Downgrading ``nowait`` preserves program semantics for issue-freedom
    checking (hypothesis 2 of Theorem 1): the task still runs, only the
    host suspends until it completes.
    """

    def target(self, kernel, maps=(), *, nowait=False, **kwargs):
        return super().target(kernel, maps, nowait=False, **kwargs)


@dataclass
class Certificate:
    """Outcome of Theorem-1 certification."""

    race_free: bool
    vsm_clean: bool
    races: list[Finding] = field(default_factory=list)
    vsm_findings: list[Finding] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        """True iff the program is issue-free in *all* schedules."""
        return self.race_free and self.vsm_clean

    def explain(self) -> str:
        if self.certified:
            return (
                "certified: data-race free and VSM-clean under synchronous "
                "execution; by Theorem 1 the program has no data mapping "
                "issue in any schedule"
            )
        reasons = []
        if not self.race_free:
            reasons.append(
                f"hypothesis 1 fails: {len(self.races)} data race(s) detected"
            )
        if not self.vsm_clean:
            reasons.append(
                f"hypothesis 2 fails: {len(self.vsm_findings)} data mapping "
                "issue(s) under synchronous execution"
            )
        return "not certified: " + "; ".join(reasons)


def certify(
    program: Program,
    *,
    n_devices: int = 1,
    unified: bool = False,
    schedule: Schedule = Schedule.EAGER,
    seed: int = 0,
) -> Certificate:
    """Apply Theorem 1 to ``program``; see module docstring."""
    # Pass 1 — race detection under the caller's schedule (HB edges are
    # schedule-invariant, so one schedule decides hypothesis 1), and VSM
    # for good measure (an issue here is an issue in *some* schedule).
    machine = Machine(n_devices, unified=unified, schedule=schedule, seed=seed)
    observing = Arbalest(race_detection=True).attach(machine)
    rt = TargetRuntime(machine)
    program(rt)
    rt.finalize()
    races = list(observing.race_findings())

    # Pass 2 — synchronous execution, VSM only (hypothesis 2).
    machine2 = Machine(n_devices, unified=unified, schedule=Schedule.EAGER, seed=seed)
    sync_detector = Arbalest(race_detection=False).attach(machine2)
    rt2 = _SynchronizingRuntime(machine2)
    program(rt2)
    rt2.finalize()
    vsm_findings = list(sync_detector.mapping_issue_findings())

    # Findings from pass 1's VSM also disprove issue-freedom (they are
    # manifest issues of a real schedule).
    vsm_findings += [
        f
        for f in observing.mapping_issue_findings()
        if f.dedup_key() not in {g.dedup_key() for g in vsm_findings}
    ]
    return Certificate(
        race_free=not races,
        vsm_clean=not vsm_findings,
        races=races,
        vsm_findings=vsm_findings,
    )
