"""Schedule exploration: fuzz the interleavings of asynchronous kernels.

§IV.E's motivation in executable form: the VSM examines *one* schedule, so
a program with ``nowait`` kernels may hide its issue in the schedules the
observed run didn't take.  :func:`explore_schedules` runs a program under
the three deterministic schedules plus seeded random ones, collecting

* the union of mapping issues across schedules (what a schedule-fuzzing
  campaign would find),
* per-schedule observable outcomes (a caller-supplied probe, e.g. the
  final value of an output array), exposing value nondeterminism, and
* whether detection was schedule-dependent — the false-negative window
  that Theorem-1 certification closes.

This is a *testing* utility, weaker than certification (it can only sample
schedules); the pair demonstrates the paper's sampling-vs-certifying
distinction, and `tests/core/test_explore.py` shows a program whose issue
one schedule hides and another manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..openmp.runtime import Machine, TargetRuntime
from ..openmp.scheduler import Schedule
from ..tools.findings import Finding
from .certify import Certificate, certify
from .detector import Arbalest

Program = Callable[[TargetRuntime], None]
Probe = Callable[[TargetRuntime], object]


@dataclass(frozen=True)
class ScheduleRun:
    """One program execution under one schedule."""

    label: str
    schedule: Schedule
    seed: int
    findings: tuple[Finding, ...]
    races: tuple[Finding, ...]
    outcome: object

    @property
    def detected(self) -> bool:
        return bool(self.findings)


@dataclass
class ExplorationResult:
    runs: list[ScheduleRun] = field(default_factory=list)
    certificate: Certificate | None = None

    @property
    def any_detection(self) -> bool:
        return any(r.detected for r in self.runs)

    @property
    def detection_is_schedule_dependent(self) -> bool:
        """Some schedule manifests the issue, some hides it (§IV.E)."""
        hits = {r.detected for r in self.runs}
        return hits == {True, False}

    @property
    def outcomes(self) -> set:
        return {repr(r.outcome) for r in self.runs}

    @property
    def nondeterministic(self) -> bool:
        return len(self.outcomes) > 1

    def union_findings(self) -> list[Finding]:
        seen: dict = {}
        for run in self.runs:
            for f in run.findings:
                seen.setdefault(f.dedup_key(), f)
        return list(seen.values())

    def render(self) -> str:
        lines = ["schedule exploration:"]
        for r in self.runs:
            status = f"{len(r.findings)} issue(s)" if r.detected else "clean"
            lines.append(
                f"  {r.label:<24} outcome={r.outcome!r:<12} {status}"
                + (f", {len(r.races)} race(s)" if r.races else "")
            )
        if self.nondeterministic:
            lines.append("  -> observable outcome is SCHEDULE-DEPENDENT")
        if self.detection_is_schedule_dependent:
            lines.append(
                "  -> single-schedule VSM has false negatives here; "
                "use Theorem-1 certification"
            )
        if self.certificate is not None:
            lines.append(f"  certification: {self.certificate.explain()}")
        return "\n".join(lines)


def explore_schedules(
    program: Program,
    *,
    probe: Probe | None = None,
    random_seeds: int = 4,
    n_devices: int = 1,
    unified: bool = False,
    with_certificate: bool = True,
) -> ExplorationResult:
    """Run ``program`` under every deterministic schedule plus random ones."""
    plans: list[tuple[str, Schedule, int]] = [
        ("eager", Schedule.EAGER, 0),
        ("defer-kernel-first", Schedule.DEFER_KERNEL_FIRST, 0),
        ("defer-host-first", Schedule.DEFER_HOST_FIRST, 0),
    ]
    plans += [
        (f"random(seed={seed})", Schedule.RANDOM, seed) for seed in range(random_seeds)
    ]
    result = ExplorationResult()
    for label, schedule, seed in plans:
        machine = Machine(n_devices, unified=unified, schedule=schedule, seed=seed)
        detector = Arbalest().attach(machine)
        rt = TargetRuntime(machine)
        program(rt)
        rt.finalize()
        outcome = probe(rt) if probe is not None else None
        result.runs.append(
            ScheduleRun(
                label=label,
                schedule=schedule,
                seed=seed,
                findings=tuple(detector.mapping_issue_findings()),
                races=tuple(detector.race_findings()),
                outcome=outcome,
            )
        )
    if with_certificate:
        result.certificate = certify(
            program, n_devices=n_devices, unified=unified
        )
    return result
