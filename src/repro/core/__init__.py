"""ARBALEST core: VSM, shadow memory, interval tree, detector, certifier."""

from .certify import Certificate, certify
from .detector import Arbalest
from .explore import ExplorationResult, ScheduleRun, explore_schedules
from .interval_tree import IntervalTree
from .multidevice import MultiDeviceArbalest, MultiShadowBlock
from .registry import MappingRecord, MappingRegistry, ShadowRegistry
from .repair import RepairAction, RepairingArbalest
from .reports import Anomaly, BlockInfo, BugReport, render_report
from .shadow import ShadowBlock, pack_word, unpack_word
from .states import ILLEGAL, TRANSITIONS, VsmOp, VsmState
from .vsm import VariableStateMachine, VsmVerdict

__all__ = [
    "Arbalest",
    "MultiDeviceArbalest",
    "MultiShadowBlock",
    "Certificate",
    "certify",
    "explore_schedules",
    "ExplorationResult",
    "ScheduleRun",
    "IntervalTree",
    "MappingRecord",
    "MappingRegistry",
    "ShadowRegistry",
    "RepairAction",
    "RepairingArbalest",
    "Anomaly",
    "BlockInfo",
    "BugReport",
    "render_report",
    "ShadowBlock",
    "pack_word",
    "unpack_word",
    "VsmOp",
    "VsmState",
    "TRANSITIONS",
    "ILLEGAL",
    "VariableStateMachine",
    "VsmVerdict",
]
