"""Packed shadow memory: the production, vectorized VSM implementation.

For every aligned granule (8 bytes, §IV.C) of every host allocation the
detector keeps one 64-bit *shadow word* whose layout transcribes Table II:

======================  ======  ========
field                    bits    position
======================  ======  ========
IsOVValid                 1       0
IsCVValid                 1       1
IsOVInitialized           1       2
IsCVInitialized           1       3
TID (thread id)           12      4..15
Scalar clock              42      16..57
IsWrite                   1       58
Access size code          2       59..60
Address offset            3       61..63
======================  ======  ========

Bits 0..1 *are* the VSM state (see :class:`repro.core.states.VsmState`), so
a whole-range transition is four numpy ops: mask out the state, push it
through a (op × state) lookup table with fancy indexing, detect the illegal
combinations with a boolean table, and write back.  This is the vectorized
twin of :class:`repro.core.vsm.VariableStateMachine`; hypothesis-based tests
assert they never disagree.

A :class:`ShadowBlock` covers one allocation.  ``granule`` is parametric
only to support the paper's §IV.C soundness argument as an ablation: coarse
(whole-array) tracking is what X10CUDA/OpenARC do and produces false alarms
on partial updates; 8 bytes is ARBALEST's choice.
"""

from __future__ import annotations

import numpy as np

from ..memory.errors import ShadowEncodingError
from ..memory.layout import GRANULE
from ..telemetry import registry as _telemetry
from .states import ILLEGAL, TRANSITIONS, VsmOp, VsmState

# -- Table II bit positions --------------------------------------------------

BIT_OV_VALID = 0
BIT_CV_VALID = 1
BIT_OV_INIT = 2
BIT_CV_INIT = 3
SHIFT_TID = 4
SHIFT_CLOCK = 16
BIT_IS_WRITE = 58
SHIFT_SIZE = 59
SHIFT_OFFSET = 61

MASK_STATE = np.uint64(0b11)
MASK_OV_INIT = np.uint64(1 << BIT_OV_INIT)
MASK_CV_INIT = np.uint64(1 << BIT_CV_INIT)
MASK_TID = np.uint64(0xFFF) << np.uint64(SHIFT_TID)
MASK_CLOCK = np.uint64((1 << 42) - 1) << np.uint64(SHIFT_CLOCK)

#: Access sizes are encoded in 2 bits: 1, 2, 4 or 8 bytes (Table II).
SIZE_CODES = {1: 0, 2: 1, 4: 2, 8: 3}
SIZE_FROM_CODE = {v: k for k, v in SIZE_CODES.items()}


def pack_word(
    state: VsmState,
    *,
    ov_initialized: bool = False,
    cv_initialized: bool = False,
    tid: int = 0,
    clock: int = 0,
    is_write: bool = False,
    access_size: int = 8,
    offset: int = 0,
) -> int:
    """Pack one full Table II shadow word (scalar; tests and reports)."""
    if access_size not in SIZE_CODES:
        raise ShadowEncodingError(f"access size must be 1/2/4/8, got {access_size}")
    if not 0 <= tid < (1 << 12):
        raise ShadowEncodingError(f"tid {tid} exceeds 12 bits")
    if not 0 <= clock < (1 << 42):
        raise ShadowEncodingError(f"clock {clock} exceeds 42 bits")
    if not 0 <= offset < 8:
        raise ShadowEncodingError(f"address offset {offset} exceeds 3 bits")
    return (
        int(state)
        | (int(ov_initialized) << BIT_OV_INIT)
        | (int(cv_initialized) << BIT_CV_INIT)
        | (tid << SHIFT_TID)
        | (clock << SHIFT_CLOCK)
        | (int(is_write) << BIT_IS_WRITE)
        | (SIZE_CODES[access_size] << SHIFT_SIZE)
        | (offset << SHIFT_OFFSET)
    )


def unpack_word(word: int) -> dict:
    """Inverse of :func:`pack_word`."""
    return {
        "state": VsmState(word & 0b11),
        "ov_initialized": bool(word >> BIT_OV_INIT & 1),
        "cv_initialized": bool(word >> BIT_CV_INIT & 1),
        "tid": (word >> SHIFT_TID) & 0xFFF,
        "clock": (word >> SHIFT_CLOCK) & ((1 << 42) - 1),
        "is_write": bool(word >> BIT_IS_WRITE & 1),
        "access_size": SIZE_FROM_CODE[(word >> SHIFT_SIZE) & 0b11],
        "offset": (word >> SHIFT_OFFSET) & 0b111,
    }


# -- vectorized transition tables -------------------------------------------

_N_OPS = len(VsmOp)
TRANS_LUT = np.zeros((_N_OPS, 4), dtype=np.uint64)
ILLEGAL_LUT = np.zeros((_N_OPS, 4), dtype=bool)
for _op in VsmOp:
    for _st in VsmState:
        TRANS_LUT[_op, _st] = int(TRANSITIONS[_op][_st])
        ILLEGAL_LUT[_op, _st] = ILLEGAL[_op][_st]

_U64_3 = np.uint64(3)
_U64_1 = np.uint64(1)

# -- scalar (plain-int) twin tables ------------------------------------------
#
# The vectorized pipeline above costs ~10 numpy dispatches per apply(); for a
# single-granule access that fixed cost dwarfs the work.  The scalar fast
# path uses these plain Python lists and int bit ops instead — hypothesis
# tests assert it never disagrees with either the vectorized path or the
# reference VariableStateMachine.

TRANS_LUT_PY: list[list[int]] = [
    [int(TRANSITIONS[op][st]) for st in VsmState] for op in VsmOp
]
ILLEGAL_LUT_PY: list[list[bool]] = [
    [ILLEGAL[op][st] for st in VsmState] for op in VsmOp
]

_OV_INIT_INT = 1 << BIT_OV_INIT
_CV_INIT_INT = 1 << BIT_CV_INIT

# Telemetry counter names for every (op, old-state) pair, precomputed so
# enabled-mode accounting on the access hot path allocates no strings.  The
# new state is a function of (op, old state), so the pair names the full
# transition edge.
_TRANSITION_KEYS: list[list[str]] = [
    [
        f"vsm.{op.name.lower()}.{VsmState(st).name}->"
        f"{VsmState(TRANS_LUT_PY[op][st]).name}"
        for st in range(4)
    ]
    for op in VsmOp
]


# Read-only constant-bool pools for the uniform fast paths: a slice of a
# shared array is ~20x cheaper than np.full/np.broadcast_to at these sizes.
# Callers treat the returned (illegal, uninit) arrays as read-only.
_CONST_POOL_CAP = 1 << 16
_FALSE_POOL = np.zeros(_CONST_POOL_CAP, dtype=bool)
_TRUE_POOL = np.ones(_CONST_POOL_CAP, dtype=bool)
_FALSE_POOL.setflags(write=False)
_TRUE_POOL.setflags(write=False)


def _const_bool(flag: bool, n: int) -> np.ndarray:
    if n <= _CONST_POOL_CAP:
        return (_TRUE_POOL if flag else _FALSE_POOL)[:n]
    return np.full(n, flag)


def _step_word(w: int, op: VsmOp) -> tuple[int, bool, bool]:
    """One Table-II transition on a plain-int shadow word.

    Returns ``(new_word, illegal, uninitialized)``; shared by the scalar
    and uniform-range fast paths.
    """
    st = w & 0b11
    illegal = ILLEGAL_LUT_PY[op][st]
    uninit = False
    if illegal:
        if op is VsmOp.READ_HOST:
            uninit = not (w >> BIT_OV_INIT) & 1
        else:  # the only other illegal-capable op is READ_TARGET
            uninit = not (w >> BIT_CV_INIT) & 1
    if op is VsmOp.WRITE_HOST:
        w |= _OV_INIT_INT
    elif op is VsmOp.WRITE_TARGET:
        w |= _CV_INIT_INT
    elif op is VsmOp.UPDATE_HOST:
        w = (w & ~_OV_INIT_INT) | ((w >> 1) & _OV_INIT_INT)
    elif op is VsmOp.UPDATE_TARGET:
        w = (w & ~_CV_INIT_INT) | ((w & _OV_INIT_INT) << 1)
    elif op is VsmOp.ALLOCATE or op is VsmOp.RELEASE:
        w &= ~_CV_INIT_INT
    return (w & ~0b11) | TRANS_LUT_PY[op][st], illegal, uninit


class ShadowBlock:
    """Shadow words for one host allocation (one word per granule).

    Blocks additionally keep a *uniform-word summary*: while every granule
    holds the same shadow word (true from birth, and preserved by the
    whole-block transitions that dominate bulk workloads) ``_uniform`` holds
    that word and the backing array is stale.  Whole-range applies then cost
    O(1) plain-int work; any partial or per-granule operation first
    materializes the summary back into ``words``.
    """

    __slots__ = ("base", "nbytes", "granule", "_words", "_uniform", "label")

    def __init__(self, base: int, nbytes: int, *, granule: int = GRANULE, label: str = ""):
        if granule <= 0:
            raise ValueError(f"granule must be positive, got {granule}")
        self.base = base
        self.nbytes = nbytes
        self.granule = granule
        self.label = label
        n = -(-nbytes // granule)
        # All-invalid, nothing initialized: exactly "[Host: 0, Accel: 0]".
        self._words = np.zeros(n, dtype=np.uint64)
        self._uniform: int | None = 0

    def _materialize(self) -> np.ndarray:
        """Write the uniform summary back into the word array and return it."""
        u = self._uniform
        if u is not None:
            self._words.fill(u)
            self._uniform = None
        return self._words

    @property
    def words(self) -> np.ndarray:
        """The per-granule shadow words (materializing any uniform summary)."""
        return self._materialize()

    # -- indexing -----------------------------------------------------------

    @property
    def n_granules(self) -> int:
        return len(self._words)

    @property
    def shadow_nbytes(self) -> int:
        return self._words.nbytes

    def contains(self, address: int, span: int = 1) -> bool:
        return self.base <= address and address + span <= self.base + self.nbytes

    def index_range(self, address: int, span: int) -> slice:
        """Local granule slice covering ``[address, address+span)``, clipped."""
        lo = max(0, (address - self.base) // self.granule)
        hi = min(self.n_granules, -(-(address + span - self.base) // self.granule))
        return slice(lo, max(lo, hi))

    def local_indices(self, absolute_granules: np.ndarray) -> np.ndarray:
        """Translate absolute 8-byte-granule indices to local word indices.

        Only meaningful for the default granule of 8; indices outside the
        block are clipped away by the caller.
        """
        return absolute_granules - self.base // self.granule

    # -- transitions ------------------------------------------------------------

    def apply(self, idx, op: VsmOp, device_id: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``op`` to the granules selected by ``idx`` (slice or array).

        Returns ``(illegal, uninitialized)`` boolean arrays aligned with the
        selection: which granules had no legal transition, and which of
        those were never initialized on the reading side (UUM vs USD).

        ``device_id`` is accepted for interface parity with the
        multi-device shadow (§IV.C) and ignored here: the four-state VSM
        models exactly one accelerator.
        """
        if type(idx) is slice:
            lo, hi = idx.start, idx.stop
            if (
                lo is not None
                and hi is not None
                and (idx.step is None or idx.step == 1)
            ):
                if hi <= lo:
                    return np.zeros(0, dtype=bool), np.zeros(0, dtype=bool)
                if hi - lo == 1:
                    ill, uni = self.apply_scalar(lo, op, device_id)
                    return np.array([ill]), np.array([uni])
                u = self._uniform
                if u is not None and lo == 0 and hi >= len(self._words):
                    # Whole-block transition on a uniform block: O(1) — the
                    # summary steps once and the word array stays stale.
                    n = len(self._words)
                    new_w, ill, uni = _step_word(u, op)
                    self._uniform = new_w
                    telemetry = _telemetry.ACTIVE
                    if telemetry is not None:
                        telemetry.count(_TRANSITION_KEYS[op][u & 0b11], n)
                    return _const_bool(ill, n), _const_bool(uni, n)
                # Uniform-range fast path: whole-array data ops and kernel
                # accesses usually find every granule in one state, so one
                # scalar transition broadcast back replaces the vectorized
                # pipeline below.
                words = self._materialize()
                w0 = words[idx]
                n = len(w0)
                if n and bool((w0 == w0[0]).all()):
                    old = int(w0[0])
                    new_w, ill, uni = _step_word(old, op)
                    words[idx] = new_w
                    telemetry = _telemetry.ACTIVE
                    if telemetry is not None:
                        telemetry.count(_TRANSITION_KEYS[op][old & 0b11], n)
                    return _const_bool(ill, n), _const_bool(uni, n)
        w = self.words[idx]
        st = (w & MASK_STATE).astype(np.intp)
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            counts = np.bincount(st, minlength=4)
            keys = _TRANSITION_KEYS[op]
            for state_code in range(4):
                if counts[state_code]:
                    telemetry.count(keys[state_code], int(counts[state_code]))
        illegal = ILLEGAL_LUT[op][st]
        if op is VsmOp.READ_HOST:
            uninit = illegal & ((w >> np.uint64(BIT_OV_INIT)) & _U64_1 == 0)
        elif op is VsmOp.READ_TARGET:
            uninit = illegal & ((w >> np.uint64(BIT_CV_INIT)) & _U64_1 == 0)
        else:
            uninit = np.zeros_like(illegal)
        # Initialization-bit bookkeeping (matches VariableStateMachine).
        if op is VsmOp.WRITE_HOST:
            w = w | MASK_OV_INIT
        elif op is VsmOp.WRITE_TARGET:
            w = w | MASK_CV_INIT
        elif op is VsmOp.UPDATE_HOST:
            cv_init = (w >> np.uint64(1)) & MASK_OV_INIT  # bit3 -> bit2 position
            w = (w & ~MASK_OV_INIT) | cv_init
        elif op is VsmOp.UPDATE_TARGET:
            ov_init = (w & MASK_OV_INIT) << np.uint64(1)  # bit2 -> bit3 position
            w = (w & ~MASK_CV_INIT) | ov_init
        elif op in (VsmOp.ALLOCATE, VsmOp.RELEASE):
            w = w & ~MASK_CV_INIT
        w = (w & ~MASK_STATE) | TRANS_LUT[op][st]
        self.words[idx] = w
        return illegal, uninit

    def apply_scalar(self, i: int, op: VsmOp, device_id: int = 1) -> tuple[bool, bool]:
        """Scalar fast path: apply ``op`` to granule ``i`` with plain-int ops.

        Semantically identical to :meth:`apply` on a one-granule selection,
        but returns plain bools and touches numpy only to load/store the one
        word.  ``device_id`` is ignored exactly as in :meth:`apply`.
        """
        u = self._uniform
        if u is not None:
            new_w, illegal, uninit = _step_word(u, op)
            if new_w == u:
                # The word didn't change (legal or illegal *read*): the
                # block stays uniform and the array stays untouched.
                pass
            elif len(self._words) == 1:
                self._uniform = new_w
            else:
                self._materialize()[i] = new_w
            telemetry = _telemetry.ACTIVE
            if telemetry is not None:
                telemetry.count(_TRANSITION_KEYS[op][u & 0b11])
            return illegal, uninit
        words = self._words
        old = int(words[i])
        new_w, illegal, uninit = _step_word(old, op)
        words[i] = new_w
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            telemetry.count(_TRANSITION_KEYS[op][old & 0b11])
        return illegal, uninit

    def apply_ops(self, idx: np.ndarray, ops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Columnar transition: one op *per selected granule*, gather/scatter.

        ``idx`` is a local granule index array with **no repeats** (the
        columnar engine splits batches into first-occurrence passes before
        calling this) and ``ops`` the matching VsmOp codes — access ops
        only (READ_HOST/READ_TARGET/WRITE_HOST/WRITE_TARGET).  Returns
        ``(illegal, uninitialized)`` aligned with the selection, with the
        same semantics as :meth:`apply`.
        """
        words = self._materialize()
        w = words[idx]
        st = (w & MASK_STATE).astype(np.intp)
        illegal = ILLEGAL_LUT[ops, st]
        ov_uninit = (w >> np.uint64(BIT_OV_INIT)) & _U64_1 == 0
        cv_uninit = (w >> np.uint64(BIT_CV_INIT)) & _U64_1 == 0
        uninit = illegal & np.where(ops == VsmOp.READ_HOST, ov_uninit, cv_uninit)
        w = (
            w
            | np.where(ops == VsmOp.WRITE_HOST, MASK_OV_INIT, np.uint64(0))
            | np.where(ops == VsmOp.WRITE_TARGET, MASK_CV_INIT, np.uint64(0))
        )
        w = (w & ~MASK_STATE) | TRANS_LUT[ops, st]
        words[idx] = w
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            combo = np.bincount(ops * 4 + st, minlength=16)
            for code in np.flatnonzero(combo):
                telemetry.count(
                    _TRANSITION_KEYS[code >> 2][code & 3], int(combo[code])
                )
        return illegal, uninit

    def record_access(
        self, idx, *, tid: int, clock: int, is_write: bool, access_size: int, offset: int
    ) -> None:
        """Stamp the Table II access-metadata fields (optional rich mode)."""
        meta = np.uint64(
            (tid << SHIFT_TID)
            | (clock << SHIFT_CLOCK)
            | (int(is_write) << BIT_IS_WRITE)
            | (SIZE_CODES[access_size] << SHIFT_SIZE)
            | (offset << SHIFT_OFFSET)
        )
        keep = np.uint64(0b1111)  # validity + init bits survive
        self.words[idx] = (self.words[idx] & keep) | meta

    # -- inspection ----------------------------------------------------------

    def states(self, idx=slice(None)) -> np.ndarray:
        """Current VSM state codes of the selected granules."""
        return (self.words[idx] & MASK_STATE).astype(np.uint8)

    def state_label(self, i: int) -> str:
        """VSM state name of granule ``i`` (flight-recorder timelines)."""
        u = self._uniform
        w = u if u is not None else int(self._words[i])
        return VsmState(w & 0b11).name

    def state_at(self, address: int) -> VsmState:
        u = self._uniform
        if u is not None:
            return VsmState(u & 0b11)
        return VsmState(int(self._words[(address - self.base) // self.granule] & MASK_STATE))

    def word_at(self, address: int) -> dict:
        return unpack_word(int(self.words[(address - self.base) // self.granule]))
