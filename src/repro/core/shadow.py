"""Packed shadow memory: the production, vectorized VSM implementation.

For every aligned granule (8 bytes, §IV.C) of every host allocation the
detector keeps one 64-bit *shadow word* whose layout transcribes Table II:

======================  ======  ========
field                    bits    position
======================  ======  ========
IsOVValid                 1       0
IsCVValid                 1       1
IsOVInitialized           1       2
IsCVInitialized           1       3
TID (thread id)           12      4..15
Scalar clock              42      16..57
IsWrite                   1       58
Access size code          2       59..60
Address offset            3       61..63
======================  ======  ========

Bits 0..1 *are* the VSM state (see :class:`repro.core.states.VsmState`), so
a whole-range transition is four numpy ops: mask out the state, push it
through a (op × state) lookup table with fancy indexing, detect the illegal
combinations with a boolean table, and write back.  This is the vectorized
twin of :class:`repro.core.vsm.VariableStateMachine`; hypothesis-based tests
assert they never disagree.

A :class:`ShadowBlock` covers one allocation.  ``granule`` is parametric
only to support the paper's §IV.C soundness argument as an ablation: coarse
(whole-array) tracking is what X10CUDA/OpenARC do and produces false alarms
on partial updates; 8 bytes is ARBALEST's choice.
"""

from __future__ import annotations

import numpy as np

from ..memory.errors import ShadowEncodingError
from ..memory.layout import GRANULE
from .states import ILLEGAL, TRANSITIONS, VsmOp, VsmState

# -- Table II bit positions --------------------------------------------------

BIT_OV_VALID = 0
BIT_CV_VALID = 1
BIT_OV_INIT = 2
BIT_CV_INIT = 3
SHIFT_TID = 4
SHIFT_CLOCK = 16
BIT_IS_WRITE = 58
SHIFT_SIZE = 59
SHIFT_OFFSET = 61

MASK_STATE = np.uint64(0b11)
MASK_OV_INIT = np.uint64(1 << BIT_OV_INIT)
MASK_CV_INIT = np.uint64(1 << BIT_CV_INIT)
MASK_TID = np.uint64(0xFFF) << np.uint64(SHIFT_TID)
MASK_CLOCK = np.uint64((1 << 42) - 1) << np.uint64(SHIFT_CLOCK)

#: Access sizes are encoded in 2 bits: 1, 2, 4 or 8 bytes (Table II).
SIZE_CODES = {1: 0, 2: 1, 4: 2, 8: 3}
SIZE_FROM_CODE = {v: k for k, v in SIZE_CODES.items()}


def pack_word(
    state: VsmState,
    *,
    ov_initialized: bool = False,
    cv_initialized: bool = False,
    tid: int = 0,
    clock: int = 0,
    is_write: bool = False,
    access_size: int = 8,
    offset: int = 0,
) -> int:
    """Pack one full Table II shadow word (scalar; tests and reports)."""
    if access_size not in SIZE_CODES:
        raise ShadowEncodingError(f"access size must be 1/2/4/8, got {access_size}")
    if not 0 <= tid < (1 << 12):
        raise ShadowEncodingError(f"tid {tid} exceeds 12 bits")
    if not 0 <= clock < (1 << 42):
        raise ShadowEncodingError(f"clock {clock} exceeds 42 bits")
    if not 0 <= offset < 8:
        raise ShadowEncodingError(f"address offset {offset} exceeds 3 bits")
    return (
        int(state)
        | (int(ov_initialized) << BIT_OV_INIT)
        | (int(cv_initialized) << BIT_CV_INIT)
        | (tid << SHIFT_TID)
        | (clock << SHIFT_CLOCK)
        | (int(is_write) << BIT_IS_WRITE)
        | (SIZE_CODES[access_size] << SHIFT_SIZE)
        | (offset << SHIFT_OFFSET)
    )


def unpack_word(word: int) -> dict:
    """Inverse of :func:`pack_word`."""
    return {
        "state": VsmState(word & 0b11),
        "ov_initialized": bool(word >> BIT_OV_INIT & 1),
        "cv_initialized": bool(word >> BIT_CV_INIT & 1),
        "tid": (word >> SHIFT_TID) & 0xFFF,
        "clock": (word >> SHIFT_CLOCK) & ((1 << 42) - 1),
        "is_write": bool(word >> BIT_IS_WRITE & 1),
        "access_size": SIZE_FROM_CODE[(word >> SHIFT_SIZE) & 0b11],
        "offset": (word >> SHIFT_OFFSET) & 0b111,
    }


# -- vectorized transition tables -------------------------------------------

_N_OPS = len(VsmOp)
TRANS_LUT = np.zeros((_N_OPS, 4), dtype=np.uint64)
ILLEGAL_LUT = np.zeros((_N_OPS, 4), dtype=bool)
for _op in VsmOp:
    for _st in VsmState:
        TRANS_LUT[_op, _st] = int(TRANSITIONS[_op][_st])
        ILLEGAL_LUT[_op, _st] = ILLEGAL[_op][_st]

_U64_3 = np.uint64(3)
_U64_1 = np.uint64(1)


class ShadowBlock:
    """Shadow words for one host allocation (one word per granule)."""

    __slots__ = ("base", "nbytes", "granule", "words", "label")

    def __init__(self, base: int, nbytes: int, *, granule: int = GRANULE, label: str = ""):
        if granule <= 0:
            raise ValueError(f"granule must be positive, got {granule}")
        self.base = base
        self.nbytes = nbytes
        self.granule = granule
        self.label = label
        n = -(-nbytes // granule)
        # All-invalid, nothing initialized: exactly "[Host: 0, Accel: 0]".
        self.words = np.zeros(n, dtype=np.uint64)

    # -- indexing -----------------------------------------------------------

    @property
    def n_granules(self) -> int:
        return len(self.words)

    @property
    def shadow_nbytes(self) -> int:
        return self.words.nbytes

    def contains(self, address: int, span: int = 1) -> bool:
        return self.base <= address and address + span <= self.base + self.nbytes

    def index_range(self, address: int, span: int) -> slice:
        """Local granule slice covering ``[address, address+span)``, clipped."""
        lo = max(0, (address - self.base) // self.granule)
        hi = min(self.n_granules, -(-(address + span - self.base) // self.granule))
        return slice(lo, max(lo, hi))

    def local_indices(self, absolute_granules: np.ndarray) -> np.ndarray:
        """Translate absolute 8-byte-granule indices to local word indices.

        Only meaningful for the default granule of 8; indices outside the
        block are clipped away by the caller.
        """
        return absolute_granules - self.base // self.granule

    # -- transitions ------------------------------------------------------------

    def apply(self, idx, op: VsmOp, device_id: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``op`` to the granules selected by ``idx`` (slice or array).

        Returns ``(illegal, uninitialized)`` boolean arrays aligned with the
        selection: which granules had no legal transition, and which of
        those were never initialized on the reading side (UUM vs USD).

        ``device_id`` is accepted for interface parity with the
        multi-device shadow (§IV.C) and ignored here: the four-state VSM
        models exactly one accelerator.
        """
        w = self.words[idx]
        st = (w & MASK_STATE).astype(np.intp)
        illegal = ILLEGAL_LUT[op][st]
        if op is VsmOp.READ_HOST:
            uninit = illegal & ((w >> np.uint64(BIT_OV_INIT)) & _U64_1 == 0)
        elif op is VsmOp.READ_TARGET:
            uninit = illegal & ((w >> np.uint64(BIT_CV_INIT)) & _U64_1 == 0)
        else:
            uninit = np.zeros_like(illegal)
        # Initialization-bit bookkeeping (matches VariableStateMachine).
        if op is VsmOp.WRITE_HOST:
            w = w | MASK_OV_INIT
        elif op is VsmOp.WRITE_TARGET:
            w = w | MASK_CV_INIT
        elif op is VsmOp.UPDATE_HOST:
            cv_init = (w >> np.uint64(1)) & MASK_OV_INIT  # bit3 -> bit2 position
            w = (w & ~MASK_OV_INIT) | cv_init
        elif op is VsmOp.UPDATE_TARGET:
            ov_init = (w & MASK_OV_INIT) << np.uint64(1)  # bit2 -> bit3 position
            w = (w & ~MASK_CV_INIT) | ov_init
        elif op in (VsmOp.ALLOCATE, VsmOp.RELEASE):
            w = w & ~MASK_CV_INIT
        w = (w & ~MASK_STATE) | TRANS_LUT[op][st]
        self.words[idx] = w
        return illegal, uninit

    def record_access(
        self, idx, *, tid: int, clock: int, is_write: bool, access_size: int, offset: int
    ) -> None:
        """Stamp the Table II access-metadata fields (optional rich mode)."""
        meta = np.uint64(
            (tid << SHIFT_TID)
            | (clock << SHIFT_CLOCK)
            | (int(is_write) << BIT_IS_WRITE)
            | (SIZE_CODES[access_size] << SHIFT_SIZE)
            | (offset << SHIFT_OFFSET)
        )
        keep = np.uint64(0b1111)  # validity + init bits survive
        self.words[idx] = (self.words[idx] & keep) | meta

    # -- inspection ----------------------------------------------------------

    def states(self, idx=slice(None)) -> np.ndarray:
        """Current VSM state codes of the selected granules."""
        return (self.words[idx] & MASK_STATE).astype(np.uint8)

    def state_at(self, address: int) -> VsmState:
        return VsmState(int(self.words[(address - self.base) // self.granule] & MASK_STATE))

    def word_at(self, address: int) -> dict:
        return unpack_word(int(self.words[(address - self.base) // self.granule]))
