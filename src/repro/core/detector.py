"""ARBALEST: the on-the-fly data mapping issue detector.

The detector composes the pieces exactly as Figure 5 lays them out:

* **runtime data collection** — it subscribes to the full event set: OMPT
  data ops and kernel events, the instrumentation pass's memory accesses,
  allocation interceptors, and task synchronization;
* **dynamic analysis** — per 8-byte granule of every host allocation it
  drives the variable state machine (vectorized, in
  :class:`~repro.core.shadow.ShadowBlock`); device addresses are resolved
  to their mapping through the interval tree (amortized O(1)); the embedded
  FastTrack engine (shared with the Archer model) supplies race detection,
  which Theorem 1 needs;
* **bug report generation** — illegal transitions and overflow checks
  produce :class:`~repro.tools.findings.Finding`s wrapped into Fig-7-style
  :class:`~repro.core.reports.BugReport`s.

Event-to-VSM mapping (§IV.A):

==============================  ==========================================
runtime event                    VSM operation on the affected OV granules
==============================  ==========================================
host program read/write          read_host / write_host
device program read/write        read_target / write_target (via CV→OV)
DataOp ALLOC                     allocate  (unified: update_target)
DataOp DELETE                    release
DataOp H2D (entry/update to)     update_target
DataOp D2H (exit/update from)    update_host
==============================  ==========================================

Buffer-overflow extension (§IV.D): a device access whose address does not
fall inside the mapping of the kernel's own variable — a different interval
or no interval at all — is reported as a data-mapping-related buffer
overflow, and only the in-bounds part drives the VSM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..events.source import UNKNOWN_LOCATION
from ..forensics import recorder as _forensics
from ..memory.layout import GRANULE
from ..telemetry import registry as _telemetry
from ..events.columnar import first_occurrence_passes
from ..tools.archer import RaceEngine
from ..tools.base import Tool
from ..tools.findings import Finding, FindingKind
from .registry import MappingRecord, MappingRegistry, ShadowRegistry
from .reports import Anomaly, BlockInfo, BugReport
from .shadow import ShadowBlock
from .states import VsmOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..events.records import (
        Access,
        AllocationEvent,
        DataOp,
        KernelEvent,
        MemcpyEvent,
        SyncEvent,
    )

#: Flight-recorder event kinds for each OMPT data-op kind.
_DATA_OP_EVENT_KINDS = {
    "alloc": "map",
    "delete": "unmap",
    "h2d": "update-to-device",
    "d2h": "update-to-host",
}


class Arbalest(Tool):
    """The data mapping issue detector (single-accelerator VSM).

    Parameters
    ----------
    granule:
        Tracking granularity in bytes; 8 is the paper's sound choice.  The
        coarse whole-array ablation uses a huge granule via
        :class:`CoarseArbalest` instead of this knob.
    race_detection:
        Run the embedded FastTrack engine (needed for Theorem-1
        certification and responsible for most of the overhead, §VI.E).
    record_access_metadata:
        Also stamp Table II's tid/clock/size/offset fields into the shadow
        word on every access (rich reports at extra cost).
    shadow_budget_bytes:
        Optional cap on live shadow storage.  Under pressure new blocks are
        coarsened to whole-allocation granularity (conservative ``INVALID``
        start state) instead of failing — precision loss is accounted in
        :meth:`degradation_stats`, the analysis never crashes.
    certificate:
        A :class:`~repro.staticlint.certificate.SafetyCertificate` (or any
        iterable of variable names) from the static linter.  Allocations of
        certified variables get no shadow block and their accesses skip VSM
        transitions *and* the race engine's per-access check — the
        static-assisted mode.  The §IV.D device bounds check stays on as a
        safety net (a certified variable overflowing would mean the
        certificate is unsound).  Trade-off, by construction: on certified
        variables the cert-pruned run can miss data races the full run
        would flag; the certificate only proves mapping-issue freedom.
        Skip counts are in :meth:`cert_stats`.

    **Quarantine (chaos hardening).**  A perturbed OMPT stream — duplicated,
    dropped, or reordered callbacks — can present the detector with events
    its bookkeeping says are impossible.  Rather than corrupting the mapping
    registry or unwinding the run, such events are quarantined with a
    documented recovery transition, logged in :attr:`quarantine_log`:

    * *duplicate ALLOC* (identical CV base/size/device): idempotent — the
      existing mapping is kept, the event is absorbed;
    * *conflicting ALLOC* (overlapping a live separate-memory CV range):
      newest-wins — stale overlapping mappings are evicted, the new one is
      installed;
    * *unmatched DELETE*: reported as a ``BAD_FREE`` finding (a real
      double-delete looks identical) and absorbed;
    * *unknown-region device access*: reported as a buffer overflow (§IV.D
      already defines this) — no registry mutation, no crash.
    """

    name = "arbalest"

    def __init__(
        self,
        *,
        granule: int = GRANULE,
        race_detection: bool = True,
        record_access_metadata: bool = False,
        shadow_budget_bytes: int | None = None,
        certificate=None,
    ) -> None:
        super().__init__()
        self.granule = granule
        if certificate is None:
            certified: frozenset[str] = frozenset()
        elif hasattr(certificate, "variables"):
            certified = frozenset(certificate.variables)
        else:
            certified = frozenset(certificate)
        self.certified = certified
        # Sub-variable grants: var -> (lo, hi, length) element ranges the
        # linter proved issue-free on variables it could not whole-certify.
        self.cert_sections: dict[str, tuple[int, int, int]] = {}
        if certificate is not None and hasattr(certificate, "sections"):
            self.cert_sections = {
                c.var: (c.lo, c.hi, c.length)
                for c in certificate.sections
                if c.var not in certified
            }
        self.cert_access_skips = 0
        self.cert_section_skips = 0
        self.shadows = ShadowRegistry(
            granule=granule,
            budget_bytes=shadow_budget_bytes,
            certified=certified,
            sections=self.cert_sections,
        )
        self.mappings = MappingRegistry(certified=certified)
        self.race_engine = RaceEngine() if race_detection else None
        self.record_access_metadata = record_access_metadata
        self.bug_reports: list[BugReport] = []
        self.quarantine_log: list[dict] = []
        self._alloc_info: dict[int, "AllocationEvent"] = {}
        # Last-lookup caches, one per access side: ``(lo, hi, block, rec)``
        # means "every address in [lo, hi) resolves to this (shadow block,
        # mapping record) pair".  Kernels hammer one array, so these skip
        # both interval-tree stabs on the hot path.  Invalidated on every
        # alloc/free/map/unmap (see :meth:`_invalidate_lookup_caches`).
        self._lookup_host: tuple[int, int, object, MappingRecord | None] | None = None
        self._lookup_device: tuple[int, int, object, MappingRecord] | None = None
        self._lookup_cache_hits = 0

    # ------------------------------------------------------------------
    # runtime data collection
    # ------------------------------------------------------------------

    def _invalidate_lookup_caches(self) -> None:
        self._lookup_host = None
        self._lookup_device = None

    def on_allocation(self, event: "AllocationEvent") -> None:
        self._invalidate_lookup_caches()
        if event.device_id == 0:
            if event.is_free:
                self.shadows.drop(event.address)
                self._alloc_info.pop(event.address, None)
            else:
                self.shadows.create(event.address, event.nbytes, label=event.label)
                self._alloc_info[event.address] = event
        if self.race_engine is not None:
            if event.is_free:
                self.race_engine.untrack(event.device_id, event.address)
            else:
                self.race_engine.track(event.device_id, event.address, event.nbytes)

    def on_sync(self, event: "SyncEvent") -> None:
        if self.race_engine is not None:
            self.race_engine.handle_sync(
                event.kind, event.source_task, event.target_task
            )

    def on_kernel(self, event: "KernelEvent") -> None:
        # Kernel begin/end carry no VSM transitions of their own; the
        # mapping entry/exit DataOps around them do the work.
        return

    def on_memcpy(self, event: "MemcpyEvent") -> None:
        # Transfers drive the VSM through their semantic DataOp; here they
        # only feed the race engine (a transfer racing a kernel is a bug
        # Theorem 1 must see).
        if self.race_engine is None:
            return
        # Certified mapping: its transfer schedule is statically proven
        # ordered, so the race probe is skipped along with the VSM (same
        # trade the per-access certificate skip makes).
        cv = event.dst_address if event.dst_device != 0 else event.src_address
        rec = self.mappings.find(cv)
        if rec is not None and rec.certified:
            return
        racy_r = self.race_engine.check_range(
            event.src_device, event.thread_id, event.src_address, event.nbytes, False
        )
        racy_w = self.race_engine.check_range(
            event.dst_device, event.thread_id, event.dst_address, event.nbytes, True
        )
        if racy_r or racy_w:
            self.report(
                Finding(
                    tool=self.name,
                    kind=FindingKind.RACE,
                    message="data-mapping transfer races with an unsynchronized access",
                    device_id=event.dst_device,
                    thread_id=event.thread_id,
                    address=event.dst_address,
                    size=event.nbytes,
                    stack=event.stack,
                )
            )

    # -- OMPT data operations ------------------------------------------------

    def on_data_op(self, op: "DataOp") -> None:
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            with telemetry.span(
                "detector",
                f"data_op:{op.kind.value}",
                tid=op.thread_id,
                device=op.device_id,
                nbytes=op.nbytes,
            ):
                self._handle_data_op(op)
            telemetry.gauge("detector.live_mappings", len(self.mappings))
            telemetry.gauge("detector.shadow_bytes", self.shadows.shadow_bytes)
            hits, misses = self.mapping_lookup_stats()
            telemetry.gauge("detector.lookup_hits", hits)
            telemetry.gauge("detector.lookup_misses", misses)
            return
        self._handle_data_op(op)

    def _handle_data_op(self, op: "DataOp") -> None:
        self._invalidate_lookup_caches()
        unified = op.cv_address == op.ov_address
        if op.kind.value == "alloc":
            if (
                self.mappings.find_exact(op.cv_address, op.nbytes, op.device_id)
                is not None
            ):
                # Duplicated ALLOC callback: idempotent recovery — keep the
                # live mapping, absorb the event (see class docstring).
                self._quarantine("duplicate-alloc", op)
                return
            if not unified:
                victims = self.mappings.drop_overlapping(
                    op.cv_address, op.cv_address + op.nbytes
                )
                if victims:
                    # Conflicting ALLOC: newest-wins recovery.
                    self._quarantine(
                        "conflicting-alloc",
                        op,
                        detail=f"evicted {len(victims)} stale mapping(s)",
                    )
            ov_block = self.shadows.find(op.ov_address)
            record = MappingRecord(
                name=ov_block.label if ov_block is not None else "",
                ov_base=op.ov_address,
                cv_base=op.cv_address,
                nbytes=op.nbytes,
                device_id=op.device_id,
                unified=unified,
            )
            if (
                ov_block is None
                and self.shadows.skipped_range(op.ov_address) is not None
            ):
                # The host allocation was certificate-skipped; the DataOp
                # carries no variable name, so stamp the mapping by address.
                record.certified = True
            elif ov_block is not None and not record.certified:
                section = self.shadows.section_for_base(ov_block.base)
                if (
                    section is not None
                    and section[0] <= op.ov_address
                    and op.ov_address + op.nbytes <= section[1]
                ):
                    # The whole mapped section sits inside a certified
                    # sub-variable range: the mapping rides the same skip
                    # fast path, attributed as a section grant.
                    record.certified = True
                    record.certified_section = True
            self.mappings.add(record)
            # Unified: mapping makes a host-valid value visible on the
            # device (host → consistent); separate: fresh CV, garbage.
            vsm_op = VsmOp.UPDATE_TARGET if unified else VsmOp.ALLOCATE
            self._apply_host_range(op.ov_address, op.nbytes, vsm_op, op)
        elif op.kind.value == "delete":
            if self.mappings.drop(op.cv_address) is None:
                # Double delete / unmatched CV: report instead of crashing,
                # and skip the RELEASE (there is no mapping to release).
                self._quarantine("unmatched-delete", op)
                self.report(
                    Finding(
                        tool=self.name,
                        kind=FindingKind.BAD_FREE,
                        message=(
                            "delete of a corresponding variable that is not "
                            "mapped (double delete or wrong device address)"
                        ),
                        device_id=op.device_id,
                        thread_id=op.thread_id,
                        address=op.cv_address,
                        size=op.nbytes,
                        stack=op.stack,
                    )
                )
                return
            self._apply_host_range(op.ov_address, op.nbytes, VsmOp.RELEASE, op)
        elif op.kind.value == "h2d":
            self._apply_host_range(op.ov_address, op.nbytes, VsmOp.UPDATE_TARGET, op)
        elif op.kind.value == "d2h":
            self._apply_host_range(op.ov_address, op.nbytes, VsmOp.UPDATE_HOST, op)

    def _quarantine(self, reason: str, op: "DataOp", detail: str = "") -> None:
        """Log one quarantined event (impossible per current bookkeeping)."""
        if _telemetry.ACTIVE is not None:
            _telemetry.ACTIVE.count(f"detector.quarantine.{reason}")
        self.quarantine_log.append(
            {
                "reason": reason,
                "kind": op.kind.value,
                "device": op.device_id,
                "ov": op.ov_address,
                "cv": op.cv_address,
                "nbytes": op.nbytes,
                "detail": detail,
            }
        )

    def _apply_host_range(
        self, ov_address: int, nbytes: int, vsm_op: VsmOp, op: "DataOp"
    ) -> None:
        block = self.shadows.find(ov_address)
        if block is None:
            return
        idx = block.index_range(ov_address, nbytes)
        recorder = _forensics.ACTIVE
        if recorder is None:
            block.apply(idx, vsm_op, op.device_id)
            return
        # Flight-recorder path: sample the first granule's state around the
        # transition so the timeline shows state-before -> state-after.
        first = idx.start if idx.start < idx.stop else None
        before = block.state_label(first) if first is not None else ""
        block.apply(idx, vsm_op, op.device_id)
        recorder.record(
            block.label,
            _DATA_OP_EVENT_KINDS[op.kind.value],
            device_id=op.device_id,
            location=op.stack[0] if op.stack else UNKNOWN_LOCATION,
            state_before=before,
            state_after=block.state_label(first) if first is not None else "",
            detail=f"{nbytes}B",
        )

    # ------------------------------------------------------------------
    # dynamic analysis: memory accesses
    # ------------------------------------------------------------------

    def on_access(self, access: "Access") -> None:
        telemetry = _telemetry.ACTIVE
        if access.device_id == 0:
            if telemetry is not None:
                telemetry.count("detector.accesses.host")
            certified_skip = self._host_access(access)
        else:
            if telemetry is not None:
                telemetry.count("detector.accesses.device")
            certified_skip = self._device_access(access)
        if certified_skip:
            if telemetry is not None:
                telemetry.count("staticlint.access_skips")
            return  # statically proven safe: no VSM, no race check
        if self.race_engine is not None:
            self._race_check(access)

    def _race_check(self, access: "Access") -> None:
        engine = self.race_engine
        assert engine is not None
        racy = engine.check_access(access)
        if racy:
            self._report_race_finding(access)

    def _report_race_finding(self, access: "Access") -> None:
        self.report(
            Finding(
                tool=self.name,
                kind=FindingKind.RACE,
                message=(
                    f"conflicting {'write' if access.is_write else 'read'} "
                    "not ordered with a previous access"
                ),
                device_id=access.device_id,
                thread_id=access.thread_id,
                address=access.address,
                size=access.size,
                stack=access.stack,
            )
        )

    # -- columnar engine -----------------------------------------------------

    def on_batch(self, batch) -> None:
        """Columnar fast path: classify the batch once, vectorize the bulk.

        Device accesses that resolve to one separate-memory mapping, sit
        fully in bounds, and touch a single granule are driven through the
        table-lookup VSM (:meth:`ShadowBlock.apply_ops`) plus one batched
        FastTrack pass per segment; everything else — host events, bulk
        accesses, unified mappings, overflow suspects — replays through
        :meth:`on_access` *in place*, so findings land in the same order as
        under the scalar engine.  Forensics and rich-metadata runs replay
        wholesale: both sample per-event state around each transition.
        """
        accesses = batch.accesses
        if _forensics.ACTIVE is not None or self.record_access_metadata:
            on_access = self.on_access
            for access in accesses:
                on_access(access)
            return
        cols = batch.columns
        n = len(accesses)
        addr = cols.addresses
        sizes = cols.sizes

        # Snapshot the mapping and shadow indexes: every registry mutation
        # is a non-access publish (which flushes), so both are frozen for
        # the whole batch.
        recs = sorted(
            (r for r in self.mappings.records() if not r.unified),
            key=lambda r: r.cv_base,
        )
        blocks = sorted(self.shadows.blocks(), key=lambda b: b.base)

        # Classify every event: 0 = replay via on_access, 1 = certified
        # skip, 2 = race-check only (no shadow block), 3 = VSM + race.
        cat = np.zeros(n, dtype=np.int8)
        ri = np.full(n, -1, dtype=np.intp)  # mapping-record index
        bi = np.full(n, -1, dtype=np.intp)  # shadow-block index
        gran = np.zeros(n, dtype=np.int64)  # local granule index (cat == 3)
        scalar_dev = (cols.device_ids != 0) & (cols.counts == 1)
        if recs and bool(scalar_dev.any()):
            nr = len(recs)
            cv_bases = np.fromiter((r.cv_base for r in recs), dtype=np.int64, count=nr)
            cv_ends = np.fromiter((r.cv_end for r in recs), dtype=np.int64, count=nr)
            cand = np.searchsorted(cv_bases, addr, side="right") - 1
            safe = np.maximum(cand, 0)
            resolved = scalar_dev & (cand >= 0) & (addr + sizes <= cv_ends[safe])
            ri = np.where(resolved, cand, -1)
            certified = np.fromiter((r.certified for r in recs), dtype=bool, count=nr)
            is_cert = resolved & certified[safe]
            cat[is_cert] = 1
            need_vsm = resolved & ~is_cert
            if bool(need_vsm.any()):
                ov_bases = np.fromiter(
                    (r.ov_base for r in recs), dtype=np.int64, count=nr
                )
                ov = addr - cv_bases[safe] + ov_bases[safe]
                if blocks:
                    nb = len(blocks)
                    b_bases = np.fromiter(
                        (b.base for b in blocks), dtype=np.int64, count=nb
                    )
                    b_ends = np.fromiter(
                        (b.base + b.nbytes for b in blocks), dtype=np.int64, count=nb
                    )
                    b_gran = np.fromiter(
                        (b.granule for b in blocks), dtype=np.int64, count=nb
                    )
                    vect = np.fromiter(
                        (type(b) is ShadowBlock for b in blocks), dtype=bool, count=nb
                    )
                    bc = np.searchsorted(b_bases, ov, side="right") - 1
                    bsafe = np.maximum(bc, 0)
                    in_block = need_vsm & (bc >= 0) & (ov < b_ends[bsafe])
                    g_first = (ov - b_bases[bsafe]) // b_gran[bsafe]
                    g_last = (ov + sizes - 1 - b_bases[bsafe]) // b_gran[bsafe]
                    vsm_ok = (
                        in_block
                        & vect[bsafe]
                        & (g_first == g_last)
                        & (ov + sizes <= b_ends[bsafe])
                    )
                    cat[vsm_ok] = 3
                    bi = np.where(vsm_ok, bc, -1)
                    gran[vsm_ok] = g_first[vsm_ok]
                    race_only = need_vsm & ~in_block
                else:
                    race_only = need_vsm
                cat[race_only] = 2
        # Replay ineligible events in place so segment findings, replayed
        # findings, and all side effects keep the scalar engine's order.
        on_access = self.on_access
        start = 0
        for s in np.flatnonzero(cat == 0).tolist():
            if s > start:
                self._batch_segment(accesses, cols, cat, ri, bi, gran, recs, blocks, start, s)
            on_access(accesses[s])
            start = s + 1
        if start < n:
            self._batch_segment(accesses, cols, cat, ri, bi, gran, recs, blocks, start, n)

    def _batch_segment(
        self, accesses, cols, cat, ri, bi, gran, recs, blocks, start, stop
    ) -> None:
        """Vector-process one run of fast-path-eligible device accesses."""
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            telemetry.count("detector.accesses.device", stop - start)
        seg = np.arange(start, stop)
        c = cat[start:stop]
        n_cert = int((c == 1).sum())
        if n_cert:
            self.cert_access_skips += n_cert
            sec_flags = np.fromiter(
                (r.certified_section for r in recs), dtype=bool, count=len(recs)
            )
            n_sec = int(sec_flags[ri[seg[c == 1]]].sum())
            if n_sec:
                self.cert_section_skips += n_sec
            if telemetry is not None:
                telemetry.count("staticlint.access_skips", n_cert)
        is_write = cols.is_write
        # (position, phase, access, uninit) — phase 0 = VSM issue, 1 = race;
        # sorted at the end to reproduce the scalar engine's report order.
        found: list[tuple[int, int, object, bool]] = []
        vsm_pos = seg[c == 3]
        if len(vsm_pos):
            order = np.argsort(bi[vsm_pos], kind="stable")
            vp = vsm_pos[order]
            block_ids = bi[vp]
            for blk_id in np.unique(block_ids).tolist():
                sel = vp[block_ids == blk_id]
                block = blocks[blk_id]
                passes, remainder = first_occurrence_passes(gran[sel])
                for p in passes:
                    pos = sel[p]
                    ops = np.where(
                        is_write[pos],
                        np.intp(VsmOp.WRITE_TARGET),
                        np.intp(VsmOp.READ_TARGET),
                    )
                    illegal, uninit = block.apply_ops(gran[pos], ops)
                    for h in np.flatnonzero(illegal & ~is_write[pos]).tolist():
                        p_abs = int(pos[h])
                        found.append((p_abs, 0, accesses[p_abs], bool(uninit[h])))
                for r in remainder.tolist():
                    p_abs = int(sel[r])
                    access = accesses[p_abs]
                    op = VsmOp.WRITE_TARGET if access.is_write else VsmOp.READ_TARGET
                    ill, uni = block.apply_scalar(
                        int(gran[p_abs]), op, recs[int(ri[p_abs])].device_id
                    )
                    if ill and not access.is_write:
                        found.append((p_abs, 0, access, bool(uni)))
        if self.race_engine is not None:
            race_pos = seg[c != 1]  # cat 2 and 3: everything not cert-skipped
            if len(race_pos):
                racy = self.race_engine.check_batch(
                    cols.device_ids[race_pos],
                    cols.thread_ids[race_pos],
                    cols.addresses[race_pos],
                    cols.sizes[race_pos],
                    is_write[race_pos],
                )
                for p in racy:
                    p_abs = int(race_pos[p])
                    found.append((p_abs, 1, accesses[p_abs], False))
        for p_abs, phase, access, uninit in sorted(found, key=lambda t: (t[0], t[1])):
            if phase == 0:
                self._report_issue(
                    access, blocks[int(bi[p_abs])], recs[int(ri[p_abs])], uninit
                )
            else:
                self._report_race_finding(access)

    # -- host side ----------------------------------------------------------

    def _host_access(self, access: "Access") -> bool:
        """Drive the VSM for one host access.

        Returns True when the access hit a certified (statically proven)
        allocation and all dynamic checking was skipped.
        """
        address = access.address
        cached = self._lookup_host
        if cached is not None and cached[0] <= address < cached[1]:
            block, rec = cached[2], cached[3]
            self._lookup_cache_hits += 1
            if block is None:
                # Certified allocation: no shadow block exists by design.
                self.cert_access_skips += 1
                return True
        else:
            block = self.shadows.find(address)
            if block is None:
                skipped = self.shadows.skipped_range(address)
                if skipped is not None:
                    # Certified allocation (shadow creation was skipped):
                    # cache the whole range as a skip and bail out.
                    self._lookup_host = (skipped[0], skipped[1], None, None)
                    self.cert_access_skips += 1
                    return True
                return False  # freed or foreign memory: not a mapping question
            # Is this host range unified-mapped?  (Unified CVs share the host
            # address, so the mapping registry is keyed by this same address.)
            rec = self.mappings.find(address)
            lo, hi = block.base, block.base + block.nbytes
            if rec is not None:
                # The pair is valid where the block and mapping intersect.
                lo = max(lo, rec.cv_base)
                hi = min(hi, rec.cv_end)
                self._lookup_host = (lo, hi, block, rec)
            elif not self.mappings.overlaps_cv(lo, hi):
                # No CV interval touches this block at all: the "no mapping"
                # answer holds for every address in it.
                self._lookup_host = (lo, hi, block, None)
        if rec is not None and rec.unified:
            ops = (
                (VsmOp.WRITE_HOST, VsmOp.UPDATE_TARGET)
                if access.is_write
                else (VsmOp.READ_HOST,)
            )
        else:
            ops = (VsmOp.WRITE_HOST,) if access.is_write else (VsmOp.READ_HOST,)
        self._apply_access(block, access, access.address, ops, side="host")
        return False

    # -- device side ------------------------------------------------------------

    def _device_access(self, access: "Access") -> bool:
        """Drive the VSM for one device access.

        Returns True when the access resolved to a certified mapping and
        VSM/race checking was skipped (the §IV.D bounds check still ran).
        """
        address = access.address
        cached = self._lookup_device
        if cached is not None and cached[0] <= address < cached[1]:
            block, rec = cached[2], cached[3]
            self._lookup_cache_hits += 1
        else:
            rec = self.mappings.find(address)
            if rec is None:
                # No mapping contains even the first byte: the kernel touched
                # device memory outside every corresponding variable.
                self._report_overflow(access, None)
                return False
            if rec.certified:
                # Certified mapping: no shadow lookup, no VSM.  Cache the
                # CV range with a None block so repeat hits stay O(1).
                block = None
                self._lookup_device = (rec.cv_base, rec.cv_end, None, rec)
            else:
                block = self.shadows.find(
                    rec.ov_base if rec.unified else rec.to_ov(address)
                )
                if block is not None:
                    self._lookup_device = (rec.cv_base, rec.cv_end, block, rec)
        span = access.span
        in_bounds_span = min(span, rec.cv_end - address)
        if in_bounds_span < span:
            # Part of the access leaves the mapping: §IV.D overflow.  The
            # in-bounds prefix still drives the VSM below.  This check stays
            # on even for certified mappings — the cheap safety net under
            # static-assisted pruning.
            self._report_overflow(access, rec)
        if rec.certified:
            self.cert_access_skips += 1
            if rec.certified_section:
                self.cert_section_skips += 1
            return True
        if block is None:
            return False
        if rec.unified:
            ops = (
                (VsmOp.WRITE_HOST, VsmOp.UPDATE_TARGET)
                if access.is_write
                else (VsmOp.READ_HOST,)
            )
            start = address
        else:
            ops = (VsmOp.WRITE_TARGET,) if access.is_write else (VsmOp.READ_TARGET,)
            start = rec.to_ov(address)
        self._apply_access(
            block, access, start, ops, side="device", rec=rec,
            clip_span=in_bounds_span,
        )
        return False

    # -- shared transition/report path ---------------------------------------

    def _apply_access(
        self,
        block,
        access: "Access",
        start_address: int,
        ops: tuple[VsmOp, ...],
        *,
        side: str,
        rec: MappingRecord | None = None,
        clip_span: int | None = None,
    ) -> None:
        stride = access.element_stride
        span = access.span if clip_span is None else clip_span
        if span <= 0:
            return
        device_id = rec.device_id if rec is not None else max(access.device_id, 1)
        if access.count == 1:
            lo = (start_address - block.base) // block.granule
            if (
                0 <= lo < block.n_granules
                and (start_address + span - 1 - block.base) // block.granule == lo
            ):
                # Scalar fast path: the whole access lives in one granule
                # (the overwhelmingly common case), so skip numpy entirely.
                recorder = _forensics.ACTIVE
                before = block.state_label(lo) if recorder is not None else ""
                illegal = uninit = False
                first = True
                for op in ops:
                    ill, uni = block.apply_scalar(lo, op, device_id)
                    if first:
                        illegal, uninit = ill, uni
                        first = False
                if recorder is not None:
                    after = block.state_label(lo)
                    # Steady-state accesses carry no causal information;
                    # record only transitions and illegal reads.
                    if illegal or after != before:
                        recorder.record(
                            block.label,
                            access.kind_label,
                            device_id=access.device_id,
                            location=access.location,
                            state_before=before,
                            state_after=after,
                        )
                if self.record_access_metadata:
                    block.record_access(
                        lo,
                        tid=min(access.thread_id, 0xFFF),
                        clock=0,
                        is_write=access.is_write,
                        access_size=access.size if access.size in (1, 2, 4, 8) else 8,
                        offset=access.address % 8,
                    )
                if not access.is_write and illegal:
                    self._report_issue(access, block, rec, uninit)
                return
        if access.count == 1 or stride == access.size:
            idx = block.index_range(start_address, span)
        else:
            # Strided: translate per-element granule indices.
            delta = start_address - access.address
            abs_granules = access.granule_indices() + 0  # copy
            if delta % GRANULE == 0 and block.granule == GRANULE:
                local = abs_granules + delta // GRANULE - block.base // GRANULE
            else:
                starts = access.element_addresses() + delta
                first = (starts - block.base) // block.granule
                last = (starts + access.size - 1 - block.base) // block.granule
                local = np.unique(np.concatenate([first, last]))
            local = local[(local >= 0) & (local < block.n_granules)]
            idx = local
        recorder = _forensics.ACTIVE
        rec_first: int | None = None
        before = ""
        if recorder is not None:
            if type(idx) is slice:
                if idx.start < idx.stop:
                    rec_first = idx.start
            elif len(idx):
                rec_first = int(idx[0])
            if rec_first is not None:
                before = block.state_label(rec_first)
        illegal = None
        uninit = None
        for op in ops:
            ill, uni = block.apply(idx, op, device_id)
            if illegal is None:
                illegal, uninit = ill, uni
        assert illegal is not None and uninit is not None
        if recorder is not None and rec_first is not None:
            after = block.state_label(rec_first)
            if after != before or bool(illegal.any()):
                n = (idx.stop - idx.start) if type(idx) is slice else len(idx)
                recorder.record(
                    block.label,
                    access.kind_label,
                    device_id=access.device_id,
                    location=access.location,
                    state_before=before,
                    state_after=after,
                    detail=f"{n} granule(s)",
                )
        if self.record_access_metadata:
            block.record_access(
                idx,
                tid=min(access.thread_id, 0xFFF),
                clock=0,
                is_write=access.is_write,
                access_size=access.size if access.size in (1, 2, 4, 8) else 8,
                offset=access.address % 8,
            )
        if not access.is_write and illegal.any():
            self._report_issue(access, block, rec, bool(uninit[illegal].all()))

    # ------------------------------------------------------------------
    # bug report generation
    # ------------------------------------------------------------------

    def _report_issue(
        self,
        access: "Access",
        block,
        rec: MappingRecord | None,
        uninitialized: bool,
    ) -> None:
        kind = FindingKind.UUM if uninitialized else FindingKind.USD
        variable = block.label or (rec.name if rec is not None else "")
        side = "accelerator" if access.device_id else "host"
        other = "host" if access.device_id else "accelerator"
        if uninitialized:
            message = (
                f"read on the {side} observes memory that was never "
                "initialized on either side of the mapping"
            )
        else:
            message = (
                f"read on the {side} observes a stale value; the last write "
                f"is only visible on the {other}"
            )
        finding = Finding(
            tool=self.name,
            kind=kind,
            message=message,
            device_id=access.device_id,
            thread_id=access.thread_id,
            address=access.address,
            size=access.size,
            stack=access.stack,
            variable=variable,
        )
        if self.report(finding):
            self.bug_reports.append(
                BugReport(
                    finding=finding,
                    anomaly=Anomaly.for_kind(kind),
                    block=self._block_info(block),
                    notes=self._mapping_notes(rec),
                )
            )

    def _report_overflow(self, access: "Access", rec: MappingRecord | None) -> None:
        if rec is not None:
            message = (
                f"access runs past the corresponding variable of '{rec.name or '?'}' "
                f"(mapped section is {rec.nbytes} bytes)"
            )
            variable = rec.name
        else:
            message = (
                "access to accelerator memory that belongs to no mapped "
                "variable (wrong or too-small array section in the map clause)"
            )
            variable = ""
        finding = Finding(
            tool=self.name,
            kind=FindingKind.BO,
            message=message,
            device_id=access.device_id,
            thread_id=access.thread_id,
            address=access.address,
            size=access.size,
            stack=access.stack,
            variable=variable,
        )
        if self.report(finding):
            block = self.shadows.find(rec.ov_base) if rec is not None else None
            self.bug_reports.append(
                BugReport(
                    finding=finding,
                    anomaly=Anomaly.OVERFLOW,
                    block=self._block_info(block) if block is not None else None,
                    notes=self._mapping_notes(rec),
                )
            )

    def _block_info(self, block) -> BlockInfo:
        event = self._alloc_info.get(block.base)
        return BlockInfo(
            base=block.base,
            nbytes=block.nbytes,
            label=block.label,
            stack=event.stack if event is not None else (),
        )

    def _mapping_notes(self, rec: MappingRecord | None) -> tuple[str, ...]:
        if rec is None:
            return ()
        memory = "unified" if rec.unified else "separate"
        return (
            f"mapped section: OV {rec.ov_base:#x}..{rec.ov_base + rec.nbytes:#x} "
            f"-> CV {rec.cv_base:#x} on device {rec.device_id} ({memory} memory)",
        )

    # ------------------------------------------------------------------
    # accounting / results
    # ------------------------------------------------------------------

    def shadow_bytes(self) -> int:
        total = self.shadows.shadow_bytes
        if self.race_engine is not None:
            total += self.race_engine.shadow_bytes
        return total

    def mapping_lookup_stats(self) -> tuple[int, int]:
        """(fast-path hits, slow-path misses) over the whole lookup stack.

        Hits count both the detector's last-lookup pair cache and the
        interval tree's own stab cache; misses are the tree descents.
        """
        hits, misses = self.mappings.lookup_stats
        return hits + self._lookup_cache_hits, misses

    def cert_stats(self) -> dict:
        """Accounting of static-assisted pruning (certificate mode)."""
        return {
            "certified_variables": len(self.certified),
            "shadow_blocks_skipped": self.shadows.skipped_blocks,
            "shadow_bytes_skipped": self.shadows.skipped_bytes,
            "access_skips": self.cert_access_skips,
            "section_certified_variables": len(self.cert_sections),
            "section_shadow_blocks": self.shadows.section_blocks,
            "section_certified_bytes": self.shadows.section_bytes,
            "section_access_skips": self.cert_section_skips,
        }

    def degradation_stats(self) -> dict:
        """Accounting of graceful-degradation events (chaos campaigns)."""
        return {
            "quarantined_events": len(self.quarantine_log),
            "coarsened_blocks": self.shadows.coarsened_blocks,
            "coarsened_bytes": self.shadows.coarsened_bytes,
        }

    def check_invariants(self) -> list[str]:
        """Validate detector (and attached machine) internal consistency.

        Returns human-readable violations; empty means healthy.  Checked:
        separate-memory CV intervals are pairwise disjoint, shadow-byte
        accounting matches the live blocks, every shadow word carries a
        legal VSM state, and — when a machine is attached — every device's
        present table upholds its own invariants (refcounts ≥ 0,
        non-overlapping sorted entries).  The chaos harness runs this after
        every faulted run; graceful degradation must never leave the
        analysis in an inconsistent state.
        """
        problems: list[str] = []
        separate = sorted(
            (r.cv_base, r.cv_end, r.name)
            for r in self.mappings.records()
            if not r.unified
        )
        for (lo1, hi1, n1), (lo2, _hi2, n2) in zip(separate, separate[1:]):
            if hi1 > lo2:
                problems.append(
                    f"mapping registry: CV ranges of '{n1}' and '{n2}' overlap"
                )
        total = sum(b.shadow_nbytes for b in self.shadows.blocks())
        if total != self.shadows.shadow_bytes:
            problems.append(
                f"shadow accounting drift: blocks hold {total} bytes, "
                f"registry reports {self.shadows.shadow_bytes}"
            )
        for block in self.shadows.blocks():
            if block.n_granules and int(block.states().max()) > 3:
                problems.append(  # pragma: no cover - 2-bit states can't exceed 3
                    f"shadow block {block.label!r}: illegal VSM state code"
                )
        if self.machine is not None:
            for dev in self.machine.devices.values():
                problems.extend(dev.present.check_invariants())
        return problems

    def render_reports(self, pid: int = 0) -> str:
        return "\n\n".join(r.render(pid=pid) for r in self.bug_reports)

    def reset(self) -> None:  # keep shadow state, drop findings
        super().reset()
        self.bug_reports.clear()
        self.quarantine_log.clear()
