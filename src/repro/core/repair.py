"""Online repair of data mapping issues (§III.C of the paper).

§III.C sketches what an OpenMP implementation with an integrated analysis
module could do about detected issues (citing OmpMemOpt as pioneering
work):

* issues that manifest as **use of stale data** are repairable at runtime —
  carry out the missing memory transfer between OV and CV right before the
  offending read, making the two storages consistent;
* issues that manifest as **data races** are a compiler problem — insert
  ``depend`` clauses or emit diagnostics pointing at the unordered pair;
* **uses of uninitialized memory** are not repairable by data movement
  (there is no valid value anywhere to transfer) and get diagnostics only.

:class:`RepairingArbalest` implements exactly that split on top of the
detector.  The mechanism exploits the instrumentation order: the access
event is published *before* the raw bytes are read, so a transfer performed
inside the handler changes the value the program observes — the repaired
run computes the result the programmer intended, and every intervention is
logged as a :class:`RepairAction` carrying the equivalent directive the
programmer should add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..events.source import SourceLocation, UNKNOWN_LOCATION
from ..forensics.provenance import (
    suggest_exit_from,
    suggest_initialize,
    suggest_ordering,
    suggest_update,
)
from ..tools.findings import Finding, FindingKind
from .detector import Arbalest
from .registry import MappingRecord
from .states import VsmOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..events.records import Access


@dataclass(frozen=True)
class RepairAction:
    """One runtime intervention (or, for races/UUM, one suggestion)."""

    #: "transfer" (performed) or "diagnostic" (suggestion only).
    kind: str
    variable: str
    #: The directive the programmer should add to make the program correct.
    suggestion: str
    address: int
    nbytes: int
    stack: tuple[SourceLocation, ...] = (UNKNOWN_LOCATION,)

    def render(self) -> str:
        where = self.stack[0]
        verb = "repaired at runtime" if self.kind == "transfer" else "diagnostic"
        return f"[{verb}] {where}: {self.suggestion}"


class RepairingArbalest(Arbalest):
    """ARBALEST plus §III.C's repair policy.

    Detection behaviour (findings, reports) is unchanged — a repaired bug
    is still a bug the programmer must fix; the repairs additionally keep
    the execution on the intended-value path and say which directive is
    missing.
    """

    name = "arbalest-repair"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.repairs: list[RepairAction] = []

    # -- hook into the data-op path: rescue values before they are lost -----

    def on_data_op(self, op) -> None:
        if op.kind.value == "delete" and op.cv_address != op.ov_address:
            self._rescue_before_delete(op)
        super().on_data_op(op)

    def _rescue_before_delete(self, op) -> None:
        """A CV is about to be destroyed; if it holds the only valid copy of
        any granule, copy it back first (the transfer an exit map(from:)
        would have performed)."""
        import numpy as np

        from .states import VsmState

        machine = self.machine
        assert machine is not None
        block = self.shadows.find(op.ov_address)
        if block is None:
            return
        idx = block.index_range(op.ov_address, op.nbytes)
        states = block.states(idx)
        target_only = states == int(VsmState.TARGET)
        if not np.any(target_only):
            return
        device = machine.device(op.device_id)
        ov_buf = machine.host.buffer_containing(op.ov_address)
        cv_buf = device.buffer_containing(op.cv_address)
        if ov_buf is None or cv_buf is None:
            return
        ov_buf.copy_from(
            cv_buf,
            dst_offset=op.ov_address - ov_buf.base,
            src_offset=op.cv_address - cv_buf.base,
            nbytes=op.nbytes,
        )
        # Deliberately do NOT mark the shadow consistent: discarding a
        # device-written buffer is legal when the host never reads it (a
        # scratch array), so whether this was a bug is only decidable at a
        # later host read.  Detection semantics stay identical to the plain
        # detector (the read, if it happens, is still reported as USD) —
        # only the observed *value* has been rescued.
        mapping = self.mappings.find(op.cv_address)
        variable = mapping.name if mapping is not None else block.label
        self.repairs.append(
            RepairAction(
                kind="transfer",
                variable=variable,
                # Shared with forensics so provenance explanations and live
                # repairs describe the same fix with the same words.
                suggestion=suggest_exit_from(variable),
                address=op.ov_address,
                nbytes=op.nbytes,
                stack=op.stack,
            )
        )

    # -- hook into the detector's report path ------------------------------

    def _report_issue(
        self,
        access: "Access",
        block,
        rec: MappingRecord | None,
        uninitialized: bool,
    ) -> None:
        super()._report_issue(access, block, rec, uninitialized)
        if uninitialized:
            self._diagnose_uum(access, block, rec)
        else:
            self._repair_stale(access, block, rec)

    def report(self, finding: Finding) -> bool:
        new = super().report(finding)
        if new and finding.kind is FindingKind.RACE:
            # Races come in through several paths (program accesses and
            # runtime transfers); hooking the report funnel covers all.
            self._diagnose_race(finding)
        return new

    # -- repairs ----------------------------------------------------------------

    def _repair_stale(self, access: "Access", block, rec: MappingRecord | None) -> None:
        """Perform the missing transfer for a USD, §III.C style."""
        machine = self.machine
        assert machine is not None
        if access.device_id == 0:
            mapping = rec or self.mappings.find_by_ov(access.address)
        else:
            mapping = rec or self.mappings.find(access.address)
        if mapping is None or mapping.unified:
            return  # nothing to transfer (unified storage cannot be stale)
        device = machine.device(mapping.device_id)
        ov_buf = machine.host.buffer_containing(mapping.ov_base)
        cv_buf = device.buffer_containing(mapping.cv_base)
        if ov_buf is None or cv_buf is None:
            return
        if access.device_id == 0:
            # Host read missed a device write: update from(var).
            ov_buf.copy_from(
                cv_buf,
                dst_offset=mapping.ov_base - ov_buf.base,
                src_offset=mapping.cv_base - cv_buf.base,
                nbytes=mapping.nbytes,
            )
            vsm_op = VsmOp.UPDATE_HOST
            direction = "from"
        else:
            # Device read missed a host write: update to(var).
            cv_buf.copy_from(
                ov_buf,
                dst_offset=mapping.cv_base - cv_buf.base,
                src_offset=mapping.ov_base - ov_buf.base,
                nbytes=mapping.nbytes,
            )
            vsm_op = VsmOp.UPDATE_TARGET
            direction = "to"
        # Reflect the transfer in the VSM so the rest of the run sees the
        # now-consistent state (and the read being repaired re-checks fine).
        shadow = self.shadows.find(mapping.ov_base)
        if shadow is not None:
            shadow.apply(
                shadow.index_range(mapping.ov_base, mapping.nbytes),
                vsm_op,
                mapping.device_id,
            )
        self.repairs.append(
            RepairAction(
                kind="transfer",
                variable=mapping.name,
                suggestion=suggest_update(direction, mapping.name),
                address=access.address,
                nbytes=mapping.nbytes,
                stack=access.stack,
            )
        )

    def _diagnose_uum(self, access: "Access", block, rec: MappingRecord | None) -> None:
        variable = (rec.name if rec is not None else "") or getattr(block, "label", "")
        side = "device" if access.device_id else "host"
        self.repairs.append(
            RepairAction(
                kind="diagnostic",
                variable=variable,
                suggestion=suggest_initialize(variable, side),
                address=access.address,
                nbytes=access.size,
                stack=access.stack,
            )
        )

    def _diagnose_race(self, finding: Finding) -> None:
        self.repairs.append(
            RepairAction(
                kind="diagnostic",
                variable=finding.variable,
                suggestion=suggest_ordering(),
                address=finding.address,
                nbytes=finding.size,
                stack=finding.stack,
            )
        )

    # -- results -----------------------------------------------------------------

    def transfers_performed(self) -> list[RepairAction]:
        return [r for r in self.repairs if r.kind == "transfer"]

    def diagnostics(self) -> list[RepairAction]:
        return [r for r in self.repairs if r.kind == "diagnostic"]

    def render_repairs(self) -> str:
        return "\n".join(r.render() for r in self.repairs)

    def reset(self) -> None:
        super().reset()
        self.repairs.clear()
