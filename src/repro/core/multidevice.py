"""Multi-accelerator extension of the VSM (§IV.C of the paper).

For an application using *n* accelerators the variable state becomes an
``(n+1)``-tuple marking the validity of every storage location: the OV plus
one CV per device.  We pack the tuple into two 32-bit masks per granule:

* ``valid``  — bit 0: OV holds the last write; bit *d*: device *d*'s CV does;
* ``init``   — bit per location: was it ever written at all (UUM vs USD).

The single-accelerator VSM is the special case n = 1 (states map as
``invalid=00 / host=01 / target=10 / consistent=11`` over bits {0, d});
property-based tests assert this equivalence against the scalar reference.

Space is O(n+1) bits per granule and each operation is O(1) bit arithmetic
— vectorized over ranges with numpy, like the single-device shadow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..memory.layout import GRANULE
from .detector import Arbalest
from .registry import ShadowRegistry
from .states import VsmOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Up to 31 accelerators + the host fit the uint32 masks.
MAX_DEVICES = 31

_HOST_BIT = np.uint32(1)


def _step_masks(
    v: int, ini: int, op: VsmOp, dbit: int
) -> tuple[int, int, bool, bool]:
    """One validity/init transition on plain-int masks (shared fast path)."""
    illegal = uninit = False
    if op is VsmOp.READ_HOST:
        illegal = not v & 1
        uninit = illegal and not ini & 1
    elif op is VsmOp.READ_TARGET:
        illegal = not v & dbit
        uninit = illegal and not ini & dbit
    elif op is VsmOp.WRITE_HOST:
        v = 1
        ini |= 1
    elif op is VsmOp.WRITE_TARGET:
        v = dbit
        ini |= dbit
    elif op is VsmOp.UPDATE_HOST:
        v = v | 1 if v & dbit else v & ~1
        ini = ini | 1 if ini & dbit else ini & ~1
    elif op is VsmOp.UPDATE_TARGET:
        v = v | dbit if v & 1 else v & ~dbit
        ini = ini | dbit if ini & 1 else ini & ~dbit
    elif op is VsmOp.ALLOCATE:
        ini &= ~dbit
    elif op is VsmOp.RELEASE:
        v &= ~dbit
        ini &= ~dbit
    return v, ini, illegal, uninit


class MultiShadowBlock:
    """(n+1)-tuple validity shadow for one host allocation.

    Implements the same ``index_range``/``apply`` interface as
    :class:`~repro.core.shadow.ShadowBlock`, with ``device_id`` selecting
    which CV bit an operation touches.
    """

    __slots__ = ("base", "nbytes", "granule", "_valid", "_init", "_uniform", "label")

    def __init__(self, base: int, nbytes: int, *, granule: int = GRANULE, label: str = ""):
        self.base = base
        self.nbytes = nbytes
        self.granule = granule
        self.label = label
        n = -(-nbytes // granule)
        self._valid = np.zeros(n, dtype=np.uint32)
        self._init = np.zeros(n, dtype=np.uint32)
        # Uniform summary, like ShadowBlock: (valid, init) masks shared by
        # every granule while whole-block operations keep them in lockstep.
        self._uniform: tuple[int, int] | None = (0, 0)

    def _materialize(self) -> None:
        u = self._uniform
        if u is not None:
            self._valid.fill(u[0])
            self._init.fill(u[1])
            self._uniform = None

    @property
    def valid(self) -> np.ndarray:
        self._materialize()
        return self._valid

    @property
    def init(self) -> np.ndarray:
        self._materialize()
        return self._init

    @property
    def n_granules(self) -> int:
        return len(self._valid)

    @property
    def shadow_nbytes(self) -> int:
        return self._valid.nbytes + self._init.nbytes

    def contains(self, address: int, span: int = 1) -> bool:
        return self.base <= address and address + span <= self.base + self.nbytes

    def index_range(self, address: int, span: int) -> slice:
        lo = max(0, (address - self.base) // self.granule)
        hi = min(self.n_granules, -(-(address + span - self.base) // self.granule))
        return slice(lo, max(lo, hi))

    def apply(self, idx, op: VsmOp, device_id: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``op`` for device ``device_id``; see ShadowBlock.apply."""
        if not 1 <= device_id <= MAX_DEVICES:
            raise ValueError(f"device id {device_id} out of range 1..{MAX_DEVICES}")
        u = self._uniform
        if u is not None and type(idx) is slice:
            lo, hi = idx.start, idx.stop
            if (
                lo == 0
                and hi is not None
                and hi >= len(self._valid)
                and (idx.step is None or idx.step == 1)
            ):
                n = len(self._valid)
                v2, ini2, ill, uni = _step_masks(u[0], u[1], op, 1 << device_id)
                self._uniform = (v2, ini2)
                return np.full(n, ill), np.full(n, uni)
        self._materialize()
        dbit = np.uint32(1 << device_id)
        v = self.valid[idx]
        ini = self.init[idx]
        illegal = np.zeros(v.shape, dtype=bool)
        uninit = np.zeros(v.shape, dtype=bool)
        if op is VsmOp.READ_HOST:
            illegal = (v & _HOST_BIT) == 0
            uninit = illegal & ((ini & _HOST_BIT) == 0)
        elif op is VsmOp.READ_TARGET:
            illegal = (v & dbit) == 0
            uninit = illegal & ((ini & dbit) == 0)
        elif op is VsmOp.WRITE_HOST:
            v = np.zeros_like(v) | _HOST_BIT
            ini = ini | _HOST_BIT
        elif op is VsmOp.WRITE_TARGET:
            v = np.zeros_like(v) | dbit
            ini = ini | dbit
        elif op is VsmOp.UPDATE_HOST:
            # memcpy(OV, CV_d): OV's validity/history becomes the device's.
            dev_valid = (v & dbit) != 0
            v = np.where(dev_valid, v | _HOST_BIT, v & ~_HOST_BIT)
            dev_init = (ini & dbit) != 0
            ini = np.where(dev_init, ini | _HOST_BIT, ini & ~_HOST_BIT)
        elif op is VsmOp.UPDATE_TARGET:
            # memcpy(CV_d, OV)
            host_valid = (v & _HOST_BIT) != 0
            v = np.where(host_valid, v | dbit, v & ~dbit)
            host_init = (ini & _HOST_BIT) != 0
            ini = np.where(host_init, ini | dbit, ini & ~dbit)
        elif op is VsmOp.ALLOCATE:
            # A fresh CV holds garbage (init cleared) but, per Fig 4, the
            # validity state is unchanged: allocation is not a transfer.
            ini = ini & ~dbit
        elif op is VsmOp.RELEASE:
            v = v & ~dbit
            ini = ini & ~dbit
        self.valid[idx] = v
        self.init[idx] = ini
        return illegal, uninit

    def apply_scalar(self, i: int, op: VsmOp, device_id: int = 1) -> tuple[bool, bool]:
        """Scalar twin of :meth:`apply` for single-granule accesses."""
        if not 1 <= device_id <= MAX_DEVICES:
            raise ValueError(f"device id {device_id} out of range 1..{MAX_DEVICES}")
        dbit = 1 << device_id
        u = self._uniform
        if u is not None:
            v2, ini2, illegal, uninit = _step_masks(u[0], u[1], op, dbit)
            if (v2, ini2) == u:
                return illegal, uninit
            if len(self._valid) == 1:
                self._uniform = (v2, ini2)
                return illegal, uninit
            self._materialize()
            self._valid[i] = v2
            self._init[i] = ini2
            return illegal, uninit
        v, ini, illegal, uninit = _step_masks(
            int(self._valid[i]), int(self._init[i]), op, dbit
        )
        self._valid[i] = v
        self._init[i] = ini
        return illegal, uninit

    def record_access(self, idx, **_: object) -> None:
        """Access metadata is a Table-II (single-device) feature; no-op."""

    def validity_at(self, address: int) -> int:
        """The raw validity mask of one granule (bit 0 = host)."""
        u = self._uniform
        if u is not None:
            return u[0]
        return int(self._valid[(address - self.base) // self.granule])

    def state_label(self, i: int) -> str:
        """Validity mask of granule ``i`` rendered for flight-recorder
        timelines: which locations hold the last write, e.g. ``OV+CV2``
        (host and device 2 consistent) or ``NONE`` (nothing valid yet)."""
        u = self._uniform
        v = u[0] if u is not None else int(self._valid[i])
        if v == 0:
            return "NONE"
        parts = ["OV"] if v & 1 else []
        d = 1
        v >>= 1
        while v:
            if v & 1:
                parts.append(f"CV{d}")
            d += 1
            v >>= 1
        return "+".join(parts)


class MultiShadowRegistry(ShadowRegistry):
    """ShadowRegistry producing multi-device blocks."""

    def _make_block(
        self, base: int, nbytes: int, granule: int, label: str
    ) -> MultiShadowBlock:
        return MultiShadowBlock(base, nbytes, granule=granule, label=label)


class MultiDeviceArbalest(Arbalest):
    """ARBALEST generalized to n accelerators.

    Identical event handling to :class:`~repro.core.detector.Arbalest`; only
    the per-granule state representation changes, exactly as §IV.C
    describes ("by extending states in VSM, the algorithm can support
    multiple accelerators ... the space overhead increases to O(n+1)").
    """

    name = "arbalest-multi"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.shadows = MultiShadowRegistry(
            granule=self.granule,
            certified=self.certified,
            sections=self.cert_sections,
        )
