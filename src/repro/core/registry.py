"""Mapping registry: live OV↔CV associations, backed by the interval tree.

The detector must answer two address questions on its hot path:

* *host access*: which shadow block covers this host address? (every host
  allocation gets a block);
* *device access*: which mapping does this CV address belong to — and hence
  which OV granules carry its state — or is it a buffer overflow?

Both are interval stabbing queries; both use one
:class:`~repro.core.interval_tree.IntervalTree` with its last-lookup cache,
which is what turns the O(log m) lookup into the amortized O(1) the paper
claims (§IV.C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..telemetry import registry as _telemetry
from .interval_tree import IntervalTree
from .shadow import ShadowBlock


@dataclass
class MappingRecord:
    """One live data mapping (CV) known to the detector."""

    name: str
    ov_base: int
    cv_base: int
    nbytes: int
    device_id: int
    #: Unified-memory mapping: CV and OV are the same storage.
    unified: bool
    #: Statically proven mapping-issue-free: accesses through this record
    #: skip VSM transitions entirely (static-assisted dynamic detection).
    certified: bool = False
    #: The proof came from a sub-variable :class:`~repro.staticlint.
    #: certificate.SectionCert` (the mapping sits inside the certified
    #: element range) rather than a whole-variable grant.  Purely
    #: attribution — the skip path is the same ``certified`` fast path.
    certified_section: bool = False

    @property
    def cv_end(self) -> int:
        return self.cv_base + self.nbytes

    def cv_contains(self, address: int, span: int = 1) -> bool:
        return self.cv_base <= address and address + span <= self.cv_end

    def to_ov(self, cv_address: int) -> int:
        """Translate a device (CV) address to its host (OV) address."""
        return self.ov_base + (cv_address - self.cv_base)


class MappingRegistry:
    """Live mappings keyed by CV address range (all devices in one tree)."""

    def __init__(self, *, certified: frozenset[str] | None = None) -> None:
        self._tree: IntervalTree[MappingRecord] = IntervalTree()
        # Reverse lookup (host address -> mapping) is a plain scan: unlike
        # CV ranges, OV ranges are NOT unique — one host section can be
        # present on several devices at once — and m is small (§IV.C), so
        # a list beats maintaining a multimap tree.
        self._records: list[MappingRecord] = []
        #: Variable names a SafetyCertificate proved mapping-issue-free;
        #: records added under these names are stamped ``certified``.
        self.certified = frozenset(certified or ())

    def __len__(self) -> int:
        return len(self._tree)

    def add(self, record: MappingRecord) -> None:
        if record.name and record.name in self.certified:
            record.certified = True
        self._tree.insert(record.cv_base, record.cv_end, record)
        self._records.append(record)

    def drop(self, cv_base: int) -> MappingRecord | None:
        """Remove the mapping starting at ``cv_base``.

        Returns the removed record, or ``None`` when no mapping starts
        there — a double delete (unmatched ``cv_address``) is a program bug
        the detector reports, not a reason to crash the analysis.
        """
        try:
            record = self._tree.remove(cv_base)
        except KeyError:
            return None
        self._records.remove(record)
        return record

    def find(self, cv_address: int) -> MappingRecord | None:
        """The mapping containing ``cv_address`` (amortized O(1))."""
        return self._tree.stab(cv_address)

    def find_exact(
        self, cv_base: int, nbytes: int, device_id: int
    ) -> MappingRecord | None:
        """A live mapping identical in (CV base, size, device), if any.

        The detector's quarantine logic uses this to recognize a duplicated
        ALLOC callback (chaos, or a buggy OMPT producer) and treat it as
        idempotent instead of corrupting the interval tree.
        """
        for record in self._records:
            if (
                record.cv_base == cv_base
                and record.nbytes == nbytes
                and record.device_id == device_id
            ):
                return record
        return None

    def drop_overlapping(self, lo: int, hi: int) -> list[MappingRecord]:
        """Remove and return every mapping whose CV range overlaps ``[lo, hi)``.

        Recovery path for conflicting ALLOC callbacks: the newest mapping
        wins, stale overlapping records are evicted so the tree invariant
        (disjoint CV intervals) survives a perturbed event stream.
        """
        victims = [r for r in self._records if r.cv_base < hi and lo < r.cv_end]
        for record in victims:
            self._tree.remove(record.cv_base)
            self._records.remove(record)
        return victims

    def overlaps_cv(self, lo: int, hi: int) -> bool:
        """Whether any live CV interval overlaps ``[lo, hi)``.

        Used by the detector's host-side lookup cache: a host block with no
        overlapping CV interval can cache its "no mapping" answer for the
        whole block range.
        """
        return self._tree.first_overlap(lo, hi) is not None

    def find_by_ov(self, ov_address: int) -> MappingRecord | None:
        """A live mapping whose host section contains ``ov_address``.

        When several devices map the section, the most recently created
        mapping wins — the best guess for 'who holds the fresh value'.
        """
        for record in reversed(self._records):
            if record.ov_base <= ov_address < record.ov_base + record.nbytes:
                return record
        return None

    def records(self) -> list[MappingRecord]:
        return list(self._records)

    @property
    def lookup_stats(self) -> tuple[int, int]:
        """(cache hits, cache misses) of the underlying tree."""
        return self._tree.cache_hits, self._tree.cache_misses

    def disable_cache_for_ablation(self) -> None:
        """Monkey-path hook used by ablation A2: clear the cache every stab."""
        tree = self._tree
        original = tree.stab

        def stab_without_cache(point: int):
            tree.clear_cache()
            return original(point)

        tree.stab = stab_without_cache  # type: ignore[method-assign]


class ShadowRegistry:
    """Shadow blocks for host allocations, keyed by host address range.

    ``budget_bytes`` caps the total live shadow storage.  Under pressure
    the registry does not fail: a new block that would exceed the budget is
    *coarsened* to a single granule spanning the whole allocation, which
    starts (and conservatively stays, under partial updates) in the VSM
    ``INVALID`` state.  The precision loss is accounted in
    :attr:`coarsened_blocks` / :attr:`coarsened_bytes` — degraded tracking,
    never a crash.

    ``certified`` names variables a :class:`~repro.staticlint.certificate.
    SafetyCertificate` proved mapping-issue-free: their allocations get
    **no shadow block at all** (``create`` returns ``None`` and records the
    address range so ``drop``/lookups stay consistent).  The savings are
    accounted in :attr:`skipped_blocks` / :attr:`skipped_bytes`.

    ``sections`` carries the certificate's sub-variable grants as
    ``label -> (lo, hi, length)`` element ranges.  A section-certified
    variable still gets its full shadow block (it has real findings outside
    the section, so the VSM must keep running there), but the registry
    remembers the certified *byte* subrange of each such allocation —
    shrunk inward to granule alignment, so skipping transitions inside it
    can never perturb the state of granules outside it.  The detector uses
    :meth:`section_for_base` to stamp mappings that sit entirely inside the
    range.
    """

    def __init__(
        self,
        *,
        granule: int = 8,
        budget_bytes: int | None = None,
        certified: frozenset[str] | None = None,
        sections: dict[str, tuple[int, int, int]] | None = None,
    ) -> None:
        self._tree: IntervalTree[ShadowBlock] = IntervalTree()
        self.granule = granule
        self.budget_bytes = budget_bytes
        self._total_shadow = 0
        #: Blocks created at degraded (whole-allocation) granularity.
        self.coarsened_blocks = 0
        #: Application bytes tracked only at degraded granularity.
        self.coarsened_bytes = 0
        self.certified = frozenset(certified or ())
        #: Address ranges of certified allocations (base -> end): tracked
        #: so certified accesses are recognized without a shadow block.
        self._skipped: dict[int, int] = {}
        self.skipped_blocks = 0
        self.skipped_bytes = 0
        #: Sub-variable grants: label -> (lo, hi, length) element ranges.
        self.sections = dict(sections or {})
        #: Certified byte subranges of live blocks: base -> (byte_lo, byte_hi).
        self._section_ranges: dict[int, tuple[int, int]] = {}
        self.section_blocks = 0
        self.section_bytes = 0

    def __len__(self) -> int:
        return len(self._tree)

    def create(self, base: int, nbytes: int, label: str = "") -> ShadowBlock | None:
        if label and label in self.certified:
            self._skipped[base] = base + nbytes
            self.skipped_blocks += 1
            self.skipped_bytes += nbytes
            if _telemetry.ACTIVE is not None:
                _telemetry.ACTIVE.count("staticlint.shadow_skips")
            return None
        granule = self.granule
        if self.budget_bytes is not None:
            projected = -(-nbytes // granule) * 8
            if self._total_shadow + projected > self.budget_bytes:
                granule = max(granule, nbytes)
                self.coarsened_blocks += 1
                self.coarsened_bytes += nbytes
                if _telemetry.ACTIVE is not None:
                    _telemetry.ACTIVE.count("detector.shadow_coarsenings")
                    _telemetry.ACTIVE.observe(
                        "detector.coarsened_block_bytes", nbytes
                    )
        block = self._make_block(base, nbytes, granule, label)
        self._tree.insert(base, base + nbytes, block)
        self._total_shadow += block.shadow_nbytes
        if label and label in self.sections:
            self._record_section(base, nbytes, self.sections[label])
        return block

    def _record_section(
        self, base: int, nbytes: int, section: tuple[int, int, int]
    ) -> None:
        lo, hi, length = section
        if length <= 0 or nbytes % length:
            return  # allocation does not look like `length` elements
        itemsize = nbytes // length
        granule = self.granule
        byte_lo = base + lo * itemsize
        byte_hi = base + min(hi, length) * itemsize
        # Shrink inward to granule boundaries: a skipped transition must
        # never share a granule with an uncertified byte.
        byte_lo = -(-(byte_lo) // granule) * granule
        byte_hi = (byte_hi // granule) * granule
        if byte_hi <= byte_lo:
            return
        self._section_ranges[base] = (byte_lo, byte_hi)
        self.section_blocks += 1
        self.section_bytes += byte_hi - byte_lo
        if _telemetry.ACTIVE is not None:
            _telemetry.ACTIVE.count("staticlint.section_grants")

    def section_for_base(self, base: int) -> tuple[int, int] | None:
        """The certified byte subrange of the block at ``base``, if any."""
        return self._section_ranges.get(base)

    def _make_block(
        self, base: int, nbytes: int, granule: int, label: str
    ) -> ShadowBlock:
        """Block construction hook (multi-device registries override)."""
        return ShadowBlock(base, nbytes, granule=granule, label=label)

    def drop(self, base: int) -> ShadowBlock | None:
        if self._skipped.pop(base, None) is not None:
            return None  # certified allocation: there never was a block
        self._section_ranges.pop(base, None)
        block = self._tree.remove(base)
        self._total_shadow -= block.shadow_nbytes
        return block

    def skipped_range(self, address: int) -> tuple[int, int] | None:
        """The certified allocation range containing ``address``, if any."""
        for base, end in self._skipped.items():
            if base <= address < end:
                return (base, end)
        return None

    def find(self, address: int) -> ShadowBlock | None:
        return self._tree.stab(address)

    def blocks(self) -> list[ShadowBlock]:
        return [b for _, _, b in self._tree.items()]

    @property
    def shadow_bytes(self) -> int:
        """Total live shadow storage, for the Fig 9 space accounting."""
        return self._total_shadow
