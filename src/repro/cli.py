"""Command-line entry point: regenerate any evaluation artifact.

::

    python -m repro table3                 # Table III (precision on DRACC)
    python -m repro fig8  [--preset ref]   # time overhead table + charts
    python -m repro bench [--preset train] # tracked bench -> BENCH_fig8.json
    python -m repro fig9  [--preset ref]   # memory usage table
    python -m repro casestudy              # 503.postencil (Fig 6/7)
    python -m repro ompsan                 # §VI.G static-vs-dynamic
    python -m repro lint  [--json]         # static linter over every twin
    python -m repro synth [--json]         # synthesized minimal mappings per twin
    python -m repro synth --score          # validation matrix -> BENCH_synth.json shape
    python -m repro synth --apply NAME     # print a synthesized program as pseudo-source
    python -m repro hybrid                 # static vs dynamic vs hybrid table
    python -m repro dracc 22               # one benchmark under all tools
    python -m repro chaos [--seed 0]       # fault-injection campaign -> BENCH_chaos.json
    python -m repro chaos --target serve   # chaos-against-server -> BENCH_serve_chaos.json
    python -m repro serve [--suite buggy]  # stream DRACC through the analysis server
    python -m repro serve --bench          # server throughput -> BENCH_serve.json
    python -m repro serve --socket         # long-lived TCP front end (SIGTERM drains)
    python -m repro serve --socket --log-file serve.jsonl  # + structured JSONL log
    python -m repro top --port 9000 --once # live per-shard table off /metrics
    python -m repro profile --suite dracc --benchmark 22   # telemetry -> trace.json
    python -m repro report [--suite buggy] # findings + provenance -> report.jsonl
    python -m repro diff old.jsonl new.jsonl  # cross-run regression gate
    python -m repro diff --history BENCH_history.jsonl old.json new.json
    python -m repro sentinel               # statistical verdicts over the ledger
    python -m repro sentinel --seed-from BENCH_fig8.json  # migrate old artifacts
    python -m repro list [--json]          # inventory

Unknown artifact names (a bad ``--preset``, ``--suite``, or DRACC number)
exit with code 2 and a one-line message listing the valid choices.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table3(args: argparse.Namespace) -> int:
    from .harness import run_precision_comparison

    result = run_precision_comparison()
    print(result.render())
    ok = result.matches_paper()
    print(f"\nmatches the published Table III: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def _cmd_fig8(args: argparse.Namespace) -> int:
    from .harness import run_overhead_comparison
    from .specaccel import WORKLOADS

    result = run_overhead_comparison(
        preset=args.preset, repetitions=args.reps, engine=args.engine
    )
    print(result.render_time_table())
    print()
    for w in WORKLOADS:
        print(f"-- {w.name} ({w.spec_id}: {w.description}) --")
        print(result.render_chart(w.name))
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness import run_bench

    history = None
    if not args.no_history:
        import os

        # Default: the ledger lives next to the bench artifact, so runs
        # writing into a scratch directory keep their history there too.
        history = args.history or os.path.join(
            os.path.dirname(args.output) or ".", "BENCH_history.jsonl"
        )
    try:
        payload = run_bench(
            preset=args.preset,
            repetitions=args.reps,
            output=args.output,
            telemetry=args.telemetry,
            engine=args.engine,
            history=history,
            flamegraph=args.flamegraph,
        )
    except OSError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2
    configs = payload["configs"]
    width = max(12, max(len(c) for c in configs) + 2)
    header = f"{'Workload':<12}" + "".join(f"{c:>{width}}" for c in configs)
    print(f"Fig 8 benchmark (preset={payload['preset']}, "
          f"engine={payload['engine']}, reps={payload['repetitions']})")
    print(header)
    for w, row in payload["workloads"].items():
        print(
            f"{w:<12}"
            + "".join(f"{row[c]['slowdown']:>{width - 1}.2f}x" for c in configs)
        )
    s = payload["summary"]
    print(
        f"\narbalest slowdown: geomean {s['arbalest_slowdown_geomean']:.2f}x, "
        f"max {s['arbalest_slowdown_max']:.2f}x"
    )
    print(
        "with certificates: geomean "
        f"{s['arbalest_cert_slowdown_geomean']:.2f}x, "
        f"max {s['arbalest_cert_slowdown_max']:.2f}x"
    )
    if "arbalest_rec_slowdown_geomean" in s:
        print(
            "with flight recorder: geomean "
            f"{s['arbalest_rec_slowdown_geomean']:.2f}x "
            f"({s['recorder_overhead_geomean']:.3f}x over plain arbalest)"
        )
    consistent = payload["checksums_consistent"]
    print(f"checksums consistent across configs: {'yes' if consistent else 'NO'}")
    if "telemetry" in payload:
        counters = payload["telemetry"]["counters"]
        print(
            f"telemetry: {len(counters)} counters embedded "
            f"({sum(counters.values())} events)"
        )
    if "arbalest_prof_slowdown_geomean" in s:
        profiler = payload.get("profiler", {})
        print(
            "with continuous profiler: geomean "
            f"{s['arbalest_prof_slowdown_geomean']:.2f}x "
            f"({s['profiler_overhead_geomean']:.3f}x over plain arbalest, "
            f"{profiler.get('samples', 0)} samples, "
            f"final stride {profiler.get('stride', '?')})"
        )
    print(f"wrote {args.output}")
    if history:
        print(f"appended to ledger {history}")
    if args.flamegraph:
        print(f"wrote flamegraph {args.flamegraph}")
    return 0 if consistent else 1


def _cmd_fig9(args: argparse.Namespace) -> int:
    from .harness import run_overhead_comparison

    result = run_overhead_comparison(preset=args.preset, repetitions=1)
    print(result.render_space_table())
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from .harness import run_case_study

    result = run_case_study(preset=args.preset)
    print(result.render())
    return 0 if result.reproduced else 1


def _cmd_ompsan(args: argparse.Namespace) -> int:
    from .ompsan import BUGGY_PROGRAMS, CLEAN_PROGRAMS, analyze, postencil

    found = 0
    for number in sorted(BUGGY_PROGRAMS):
        result = analyze(BUGGY_PROGRAMS[number]())
        found += not result.clean
        print(result.render())
    print(f"\nDRACC: {found}/{len(BUGGY_PROGRAMS)} issues found statically")
    for number in sorted(CLEAN_PROGRAMS):
        result = analyze(CLEAN_PROGRAMS[number]())
        if not result.clean:
            print("FALSE POSITIVE:", result.render())
    buggy_stencil = analyze(postencil(buggy=True))
    print(
        "503.postencil: "
        + ("MISSED (the paper's documented gap)" if buggy_stencil.clean else "found")
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .staticlint import lint_suite, render_suite

    payload = lint_suite()
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_suite(payload))
    # Linter semantics: findings anywhere -> non-zero, like any linter.
    return 1 if payload["summary"]["findings"] else 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .staticlint.synth import (
        render_program,
        render_synth_suite,
        synth_suite,
        synth_suite_programs,
        synthesize,
    )

    if args.score:
        from .harness.synth import run_synth_matrix

        matrix = run_synth_matrix()
        if args.json:
            import json

            print(json.dumps(matrix.to_json(), indent=2, sort_keys=True))
        else:
            print(matrix.render())
        if not args.no_history:
            from .observe.history import append_history

            try:
                append_history(args.history, matrix.to_json())
            except OSError as exc:
                print(f"repro synth: error: {exc}", file=sys.stderr)
                return 2
            # stderr: --json consumers parse stdout as one document.
            print(f"appended to ledger {args.history}", file=sys.stderr)
        return 0 if matrix.ok else 1
    if args.apply:
        programs = synth_suite_programs()
        names = [args.apply] if args.apply != "all" else sorted(programs)
        for name in names:
            if name not in programs:
                print(f"unknown program {name!r}; try one of:", file=sys.stderr)
                for known in sorted(programs):
                    print(f"  {known}", file=sys.stderr)
                return 2
            print(render_program(synthesize(programs[name]).program))
            print()
        return 0
    payload = synth_suite()
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_synth_suite(payload))
    summary = payload["summary"]
    ok = (
        summary["equivalent"] == summary["programs"]
        and summary["synth_bytes"] <= summary["baseline_bytes"]
    )
    return 0 if ok else 1


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from .harness import run_hybrid_comparison

    result = run_hybrid_comparison()
    print(result.render())
    ok = result.matches_expectations()
    print(f"\nmatches the expected hybrid matrix: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def _cmd_dracc(args: argparse.Namespace) -> int:
    from .core import Arbalest
    from .dracc import get
    from .harness import run_benchmark_under_tools
    from .openmp import TargetRuntime

    try:
        bench = get(args.number)
    except KeyError:
        print(
            f"repro dracc: error: unknown benchmark {args.number} "
            "(valid choices: 1..56)",
            file=sys.stderr,
        )
        return 2
    print(f"{bench.name}: {bench.description}")
    effect = bench.expected_effect.name if bench.expected_effect else "none (clean)"
    print(f"expected effect: {effect}\n")
    result = run_benchmark_under_tools(bench)
    for tool, hit in result.detected.items():
        print(f"  {tool:>9}: {'DETECTED' if hit else '-'}")
    # Full ARBALEST reports for the curious.
    rt = TargetRuntime(n_devices=2)
    detector = Arbalest().attach(rt.machine)
    bench.run(rt)
    if detector.bug_reports:
        print()
        print(detector.render_reports())
    # Internal accounting: degraded runs must be visible without a debugger.
    hits, misses = detector.mapping_lookup_stats()
    total = hits + misses
    rate = 100.0 * hits / total if total else 0.0
    print()
    print(
        f"arbalest internals: mapping lookups {hits} fast-path / "
        f"{misses} tree descents ({rate:.1f}% cached)"
    )
    degradation = detector.degradation_stats()
    print(
        "  degradation: "
        + ", ".join(f"{k}={v}" for k, v in sorted(degradation.items()))
        + ("" if any(degradation.values()) else " (healthy)")
    )
    if args.report:
        from .forensics.report import write_report
        from .harness import TOOL_ORDER, run_report

        try:
            write_report(
                run_report(benchmarks=(bench,), tools=TOOL_ORDER), args.report
            )
        except OSError as exc:
            print(f"repro dracc: error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.report}")
    return 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    from .harness import run_serve_chaos

    output = args.output or "BENCH_serve_chaos.json"
    try:
        payload = run_serve_chaos(
            seed=args.seed,
            schedules=args.schedules,
            faults_per_schedule=args.faults,
            suite=args.suite,
            n_shards=args.shards,
            engine=args.engine,
            output=output,
            observe=not args.no_observe,
            trace_output=args.trace,
            log_output=args.log_file,
        )
    except OSError as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"Serve chaos campaign (seed={payload['seed']}, "
        f"schedules={payload['schedules']}, suite={payload['suite']}, "
        f"engine={payload['engine']}, shards={payload['n_shards']}): "
        f"{payload['runs']} faulted sessions over "
        f"{payload['benchmarks']} benchmarks"
    )
    print(
        f"  injected faults: {payload['injected_total']} "
        f"{payload['injected_faults']}"
    )
    print(
        f"  worker kills triggered: {payload['worker_kills_triggered']}, "
        f"restarts: {payload['worker_restarts']}, "
        f"retransmits: {payload['retransmits']}, "
        f"dup frames: {payload['dup_frames']}, "
        f"shed frames: {payload['shed_frames']}"
    )
    print(
        f"  crashes: {len(payload['crashes'])}, fingerprint mismatches: "
        f"{len(payload['fingerprint_mismatches'])}"
    )
    observability = payload.get("observability", {})
    if observability.get("enabled"):
        arc = observability.get("healthz_arc")
        print(
            f"  watchdog: fired in "
            f"{observability['watchdog_fired_runs']}/"
            f"{observability['runs_with_redelivery']} redelivery runs, "
            f"{observability['burn_events']} burns / "
            f"{observability['clear_events']} clears, healthz arc "
            + (" -> ".join(arc) if arc else "(none)")
        )
        trace = observability.get("trace")
        if trace is not None and trace.get("path"):
            print(
                f"  stitched trace: {trace['spans']} spans "
                f"({trace['replay_spans']} replay) across "
                f"{len(trace['processes'])} processes -> {trace['path']}"
            )
        if observability.get("log_path"):
            print(f"  structured log: {observability['log_path']}")
    print(f"wrote {output}")
    if not payload["ok"]:
        print(
            "serve chaos campaign FAILED: delivery or observability "
            "guarantee violated",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .harness import CHAOS_SUITES, run_chaos

    if args.suite not in CHAOS_SUITES:
        print(
            f"repro chaos: error: unknown suite {args.suite!r} "
            f"(valid choices: {', '.join(CHAOS_SUITES)})",
            file=sys.stderr,
        )
        return 2
    if args.target == "serve":
        return _cmd_chaos_serve(args)
    try:
        payload = run_chaos(
            seed=args.seed,
            schedules=args.schedules,
            faults_per_schedule=args.faults,
            suite=args.suite,
            output=args.output or "BENCH_chaos.json",
            telemetry=args.telemetry,
            report=args.report,
            engine=args.engine,
        )
    except OSError as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"Chaos campaign (seed={payload['seed']}, "
        f"schedules={payload['schedules']}, suite={payload['suite']}, "
        f"engine={payload['engine']}): "
        f"{payload['runs']} faulted runs over {payload['benchmarks']} benchmarks"
    )
    print(
        f"  injected faults: {payload['injected_total']} "
        f"{payload['injected_faults']}"
    )
    print(
        f"  crashes: {len(payload['crashes'])}, invariant violations: "
        f"{len(payload['invariant_violations'])}, quarantined events: "
        f"{payload['quarantined_events']}"
    )
    print(
        f"  transparent runs: {payload['transparent_runs']} "
        f"(divergences: {len(payload['transparent_divergences'])}), "
        f"event-faulted runs: {payload['event_faulted_runs']} "
        f"(diverged: {payload['event_faulted_diverged']}, "
        f"rate {payload['event_fault_divergence_rate']:.2%})"
    )
    for warning in payload["warnings"]:
        print(f"  warning: {warning}")
    if "telemetry" in payload:
        counters = payload["telemetry"]["counters"]
        recovery = {
            k: v
            for k, v in counters.items()
            if "retries" in k or "rollback" in k or "quarantine" in k
        }
        print(
            f"  telemetry: {len(counters)} counters embedded; recovery: "
            + (", ".join(f"{k}={v}" for k, v in sorted(recovery.items())) or "none")
        )
    print(f"wrote {args.output or 'BENCH_chaos.json'}")
    if args.report:
        print(f"wrote {args.report}")
    if not payload["ok"]:
        print("chaos campaign FAILED: recovery guarantee violated", file=sys.stderr)
        return 1
    if args.strict and payload["warnings"]:
        print(
            f"repro chaos: --strict: {len(payload['warnings'])} warning(s) "
            "treated as failures",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .harness import SERVE_SUITES
    from .harness.precision import TOOL_FACTORIES

    if args.suite not in SERVE_SUITES:
        print(
            f"repro serve: error: unknown suite {args.suite!r} "
            f"(valid choices: {', '.join(SERVE_SUITES)})",
            file=sys.stderr,
        )
        return 2
    tools = tuple(t.strip() for t in args.tools.split(",") if t.strip())
    unknown = [t for t in tools if t not in TOOL_FACTORIES]
    if unknown or not tools:
        print(
            f"repro serve: error: unknown tool(s) {', '.join(unknown) or '(none)'} "
            f"(valid choices: {', '.join(sorted(TOOL_FACTORIES))})",
            file=sys.stderr,
        )
        return 2

    if args.socket or args.stdio:
        from .observe import ServeObserver
        from .serve import ServerConfig, serve_socket, serve_stdio

        config = ServerConfig(
            n_shards=args.shards,
            engine=args.engine,
            tools=tools,
            queue_cap=args.queue_cap,
        )
        observer = None
        log_sink = None
        try:
            if not args.no_observe:
                if args.log_file:
                    try:
                        log_sink = open(args.log_file, "w")
                    except OSError as exc:
                        print(f"repro serve: error: {exc}", file=sys.stderr)
                        return 2
                observer = ServeObserver(
                    log_sink=log_sink if log_sink is not None else sys.stderr
                )
            if args.socket:
                stats = serve_socket(
                    config,
                    host=args.host,
                    port=args.port,
                    max_connections=args.max_connections,
                    observer=observer,
                )
                print(
                    f"served {stats['connections_served']} connection(s), "
                    f"{stats['sessions']} session(s) on port {stats['port']}"
                )
            else:
                stats = serve_stdio(config, observer=observer)
                print(
                    f"served {stats['sessions']} session(s) over stdio",
                    file=sys.stderr,
                )
        finally:
            if log_sink is not None:
                log_sink.close()
        return 0

    if args.bench:
        from .harness import run_serve_bench

        import os

        output = args.output or "BENCH_serve.json"
        history = None
        if not args.no_history:
            history = args.history or os.path.join(
                os.path.dirname(output) or ".", "BENCH_history.jsonl"
            )
        try:
            payload = run_serve_bench(
                suite=args.suite,
                n_shards=args.shards,
                engine=args.engine,
                tools=tools,
                queue_cap=args.queue_cap,
                output=output,
                observe=not args.no_observe,
                history=history,
            )
        except OSError as exc:
            print(f"repro serve: error: {exc}", file=sys.stderr)
            return 2
        s = payload["summary"]
        print(
            f"Serve bench (suite={payload['suite']}, "
            f"engine={payload['engine']}, shards={payload['n_shards']}): "
            f"{payload['events']} events in {payload['frames']} frames"
        )
        print(
            f"  throughput: {s['events_per_sec']:.0f} events/sec, "
            f"frame latency p50 {s['p50_frame_latency_us']:.0f}us / "
            f"p99 {s['p99_frame_latency_us']:.0f}us"
        )
        profile = payload.get("profile")
        if profile:
            print(
                f"  profiler: {profile['samples']} samples over "
                f"{profile['events']} events (final stride {profile['stride']})"
            )
        print(f"  delivery verified: {'yes' if payload['delivery_ok'] else 'NO'}")
        print(f"wrote {output}")
        if history:
            print(f"appended to ledger {history}")
        return 0 if payload["delivery_ok"] else 1

    # Default: the loopback equivalence run (the serve self-test).
    from .harness import run_serve_suite

    payload = run_serve_suite(
        suite=args.suite,
        n_shards=args.shards,
        engine=args.engine,
        tools=tools,
        queue_cap=args.queue_cap,
    )
    print(
        f"Serve suite (suite={payload['suite']}, engine={payload['engine']}, "
        f"shards={payload['n_shards']}): {payload['events']} events across "
        f"{payload['benchmarks']} sessions"
    )
    for session in payload["sessions"]:
        verdict = session["verdict"]
        status = "OK " if verdict["ok"] else "FAIL"
        print(
            f"  {status} {session['bench_name']}: "
            f"{verdict['delivered']}/{verdict['baseline']} findings delivered"
            + (
                f", dropped {len(verdict['dropped'])}, "
                f"unexpected {len(verdict['unexpected'])}"
                if not verdict["ok"]
                else ""
            )
        )
    print(
        "delivery guarantee: "
        + ("HELD (zero dropped, zero duplicated)" if payload["ok"] else "VIOLATED")
    )
    if args.report:
        from .forensics.report import write_report

        try:
            write_report(payload["report"], args.report)
        except OSError as exc:
            print(f"repro serve: error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.report}")
    return 0 if payload["ok"] else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from .observe.top import run_top

    try:
        return run_top(
            args.host,
            args.port,
            interval=args.interval,
            iterations=args.iterations,
            once=args.once,
            json_output=args.json,
            out=sys.stdout,
        )
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"repro top: error: {exc}", file=sys.stderr)
        return 2


def _cmd_profile(args: argparse.Namespace) -> int:
    from .harness import PROFILE_CLOCKS, PROFILE_SUITES, run_profile
    from .telemetry import render_self_time_table

    if args.suite not in PROFILE_SUITES:
        print(
            f"repro profile: error: unknown suite {args.suite!r} "
            f"(valid choices: {', '.join(PROFILE_SUITES)})",
            file=sys.stderr,
        )
        return 2
    try:
        payload = run_profile(
            suite=args.suite,
            benchmark=args.benchmark,
            workload=args.workload,
            preset=args.preset,
            clock=args.clock,
            output=args.output,
            metrics_output=args.metrics,
        )
    except KeyError:
        what = (
            f"benchmark {args.benchmark} (valid choices: 1..56)"
            if args.suite == "dracc"
            else f"workload {args.workload!r} (see 'repro list')"
        )
        print(f"repro profile: error: unknown {what}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro profile: error: {exc}", file=sys.stderr)
        return 2
    telemetry = payload["telemetry"]
    print(
        f"profiled {payload['target']} under arbalest "
        f"(clock={payload['clock']}, {payload['span_count']} spans across "
        f"layers: {', '.join(payload['span_layers'])})"
    )
    print()
    print(render_self_time_table(telemetry))
    snapshot = payload["snapshot"]
    gauges = snapshot["gauges"]
    print()
    print(
        f"counters: {len(snapshot['counters'])}  findings: {payload['findings']}  "
        f"lookup hits/misses: {gauges.get('detector.lookup_hits', 0)}/"
        f"{gauges.get('detector.lookup_misses', 0)}  "
        f"quarantined: {gauges.get('detector.quarantined_events', 0)}"
    )
    print(f"wrote {args.output}" + (f" and {args.metrics}" if args.metrics else ""))
    print("open the trace in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .forensics.html import render_html
    from .forensics.report import render_text, write_report
    from .harness import REPORT_SUITES, run_report
    from .harness.precision import TOOL_FACTORIES

    if args.suite not in REPORT_SUITES:
        print(
            f"repro report: error: unknown suite {args.suite!r} "
            f"(valid choices: {', '.join(REPORT_SUITES)})",
            file=sys.stderr,
        )
        return 2
    tools = tuple(t.strip() for t in args.tools.split(",") if t.strip())
    unknown = [t for t in tools if t not in TOOL_FACTORIES]
    if unknown or not tools:
        print(
            f"repro report: error: unknown tool(s) {', '.join(unknown) or '(none)'} "
            f"(valid choices: {', '.join(sorted(TOOL_FACTORIES))})",
            file=sys.stderr,
        )
        return 2
    if args.capacity < 1:
        print(
            f"repro report: error: ring capacity must be positive, "
            f"got {args.capacity}",
            file=sys.stderr,
        )
        return 2
    payload = run_report(
        suite=args.suite,
        tools=tools,
        capacity=args.capacity,
        engine=args.engine,
    )
    print(render_text(payload), end="")
    try:
        write_report(payload, args.output)
        if args.html:
            with open(args.html, "w") as fh:
                fh.write(render_html(payload))
    except OSError as exc:
        print(f"repro report: error: {exc}", file=sys.stderr)
        return 2
    print(f"\nwrote {args.output}" + (f" and {args.html}" if args.html else ""))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .forensics.diff import diff_artifacts, render_diff

    try:
        result = diff_artifacts(
            args.old, args.new, threshold=args.threshold, history=args.history
        )
    except (OSError, ValueError) as exc:
        print(f"repro diff: error: {exc}", file=sys.stderr)
        return 2
    print(render_diff(result), end="")
    return 1 if result["regression"] else 0


def _cmd_sentinel(args: argparse.Namespace) -> int:
    from .observe.history import HISTORY_KINDS, seed_history
    from .observe.sentinel import render_sentinel, run_sentinel

    if args.kind not in HISTORY_KINDS:
        print(
            f"repro sentinel: error: unknown kind {args.kind!r} "
            f"(valid choices: {', '.join(HISTORY_KINDS)})",
            file=sys.stderr,
        )
        return 2
    if args.seed_from:
        try:
            appended = seed_history(args.history, args.seed_from)
        except OSError as exc:
            print(f"repro sentinel: error: {exc}", file=sys.stderr)
            return 2
        print(f"seeded {appended} entr(y/ies) into {args.history}")
    try:
        payload = run_sentinel(
            args.history,
            kind=args.kind,
            window=args.window,
            alpha=args.alpha,
            seed=args.seed,
            resamples=args.resamples,
            min_shift=args.min_shift,
        )
    except (OSError, ValueError) as exc:
        print(f"repro sentinel: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_sentinel(payload))
    return 1 if payload["regressions"] else 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .dracc import all_benchmarks
    from .specaccel import WORKLOADS

    if args.json:
        import json

        from .harness import inventory

        print(json.dumps(inventory(), indent=2, sort_keys=True))
        return 0
    print("DRACC benchmarks:")
    for b in all_benchmarks():
        effect = b.expected_effect.name if b.expected_effect else "     "
        print(f"  {b.name}  {effect}  {b.description[:70]}")
    print("\nSPEC ACCEL workloads:")
    for w in WORKLOADS:
        print(f"  {w.spec_id}.{w.name:<10} {w.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (one subcommand per artifact)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARBALEST reproduction: regenerate the paper's evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="Table III: precision on DRACC").set_defaults(
        fn=_cmd_table3
    )

    p8 = sub.add_parser("fig8", help="Fig 8: time overhead on SPEC ACCEL")
    p8.add_argument(
        "--preset", default="ref", choices=("test", "train", "ref", "large")
    )
    p8.add_argument("--reps", type=int, default=3)
    p8.add_argument("--engine", default="scalar", choices=("scalar", "columnar"))
    p8.set_defaults(fn=_cmd_fig8)

    pb = sub.add_parser(
        "bench", help="tracked benchmark: Fig-8 matrix -> BENCH_fig8.json"
    )
    pb.add_argument(
        "--preset", default="train", choices=("test", "train", "ref", "large")
    )
    pb.add_argument("--reps", type=int, default=3)
    pb.add_argument("--engine", default="scalar", choices=("scalar", "columnar"))
    pb.add_argument("--output", default="BENCH_fig8.json")
    pb.add_argument(
        "--telemetry",
        action="store_true",
        help="measure inside a telemetry scope and embed the metric snapshot",
    )
    pb.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="bench-history ledger to append this run to "
        "(default: BENCH_history.jsonl next to --output)",
    )
    pb.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench-history ledger",
    )
    pb.add_argument(
        "--flamegraph",
        default=None,
        metavar="PATH",
        help="write the continuous profiler's flamegraph HTML to PATH",
    )
    pb.set_defaults(fn=_cmd_bench)

    p9 = sub.add_parser("fig9", help="Fig 9: memory usage on SPEC ACCEL")
    p9.add_argument("--preset", default="ref", choices=("test", "train", "ref"))
    p9.set_defaults(fn=_cmd_fig9)

    pc = sub.add_parser("casestudy", help="Fig 6/7: 503.postencil")
    pc.add_argument("--preset", default="ref", choices=("test", "train", "ref"))
    pc.set_defaults(fn=_cmd_casestudy)

    sub.add_parser("ompsan", help="§VI.G: static vs dynamic").set_defaults(
        fn=_cmd_ompsan
    )

    pl2 = sub.add_parser(
        "lint", help="static mapping linter over every static twin"
    )
    pl2.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings (the golden-file format)",
    )
    pl2.set_defaults(fn=_cmd_lint)

    py = sub.add_parser(
        "synth", help="synthesize minimal data mappings for the clean twins"
    )
    py.add_argument(
        "--json",
        action="store_true",
        help="machine-readable payload (the golden-file format)",
    )
    py.add_argument(
        "--apply",
        metavar="PROGRAM",
        help="print the synthesized program as pseudo-source ('all' for every one)",
    )
    py.add_argument(
        "--score",
        action="store_true",
        help="full validation matrix: detector-clean on both engines, "
        "value-equivalent, bytes <= hand-written (BENCH_synth.json shape)",
    )
    py.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="ledger --score appends to (default: BENCH_history.jsonl)",
    )
    py.add_argument(
        "--no-history",
        action="store_true",
        help="do not append the --score run to the bench-history ledger",
    )
    py.set_defaults(fn=_cmd_synth)

    sub.add_parser(
        "hybrid", help="static vs dynamic vs hybrid precision on DRACC"
    ).set_defaults(fn=_cmd_hybrid)

    pd = sub.add_parser("dracc", help="run one DRACC benchmark under all tools")
    pd.add_argument("number", type=int)
    pd.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write a forensics report (JSONL) for this benchmark",
    )
    pd.set_defaults(fn=_cmd_dracc)

    px = sub.add_parser(
        "chaos", help="fault-injection campaign -> BENCH_chaos.json"
    )
    px.add_argument("--seed", type=int, default=0)
    px.add_argument("--schedules", type=int, default=3)
    px.add_argument("--faults", type=int, default=6)
    # Validated by hand (not argparse choices) so an unknown suite gets a
    # one-line error instead of the full usage dump.
    px.add_argument("--suite", default="all")
    px.add_argument(
        "--target",
        default="runtime",
        choices=("runtime", "serve"),
        help="what the faults attack: the simulated runtime, or the "
        "analysis server (worker kills + wire-frame faults)",
    )
    px.add_argument(
        "--engine",
        default="scalar",
        choices=("scalar", "columnar"),
        help="event dispatch engine (the guarantees must hold under both)",
    )
    px.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard workers per session (serve target only)",
    )
    px.add_argument(
        "--output",
        default=None,
        help="artifact path (default: BENCH_chaos.json, or "
        "BENCH_serve_chaos.json for --target serve)",
    )
    px.add_argument(
        "--strict",
        action="store_true",
        help="treat chaos warnings (bounded divergence) as failures",
    )
    px.add_argument(
        "--telemetry",
        action="store_true",
        help="run inside a telemetry scope and embed the metric snapshot",
    )
    px.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write a forensics report (JSONL) of the un-faulted suite",
    )
    px.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the stitched cross-process Chrome trace of a "
        "worker-kill run (serve target only)",
    )
    px.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="write the campaign's structured JSONL event log "
        "(serve target only)",
    )
    px.add_argument(
        "--no-observe",
        action="store_true",
        help="disable the observability layer during the campaign "
        "(serve target only)",
    )
    px.set_defaults(fn=_cmd_chaos)

    ps = sub.add_parser(
        "serve",
        help="detection-as-a-service: stream DRACC through the analysis server",
    )
    # Suite and tools are validated by hand for one-line errors.
    ps.add_argument("--suite", default="buggy")
    ps.add_argument(
        "--tools",
        default="arbalest",
        help="comma-separated tool list (default: arbalest)",
    )
    ps.add_argument(
        "--shards", type=int, default=4, help="shard workers per session"
    )
    ps.add_argument(
        "--engine",
        default="columnar",
        choices=("scalar", "columnar"),
        help="per-shard event dispatch engine (default: columnar)",
    )
    ps.add_argument(
        "--queue-cap",
        type=int,
        default=256,
        help="per-session reorder-buffer capacity in frames",
    )
    ps.add_argument(
        "--bench",
        action="store_true",
        help="measure throughput + frame latency -> BENCH_serve.json",
    )
    ps.add_argument(
        "--socket",
        action="store_true",
        help="run the long-lived TCP front end (SIGTERM drains gracefully)",
    )
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=0)
    ps.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="exit after serving this many connections (for CI/tests)",
    )
    ps.add_argument(
        "--stdio",
        action="store_true",
        help="serve one connection over stdin/stdout",
    )
    ps.add_argument(
        "--output",
        default=None,
        help="bench artifact path (default: BENCH_serve.json)",
    )
    ps.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the delivered findings as a repro-report/1 JSONL "
        "(diffable against the in-process golden report)",
    )
    ps.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="write structured JSONL logs to PATH (default: stderr); "
        "front ends only",
    )
    ps.add_argument(
        "--no-observe",
        action="store_true",
        help="disable live observability (metrics/health/SLO watchdog) "
        "on the front ends and the bench",
    )
    ps.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="ledger --bench appends to (default: BENCH_history.jsonl)",
    )
    ps.add_argument(
        "--no-history",
        action="store_true",
        help="do not append the --bench run to the bench-history ledger",
    )
    ps.set_defaults(fn=_cmd_serve)

    pt = sub.add_parser(
        "top",
        help="live per-shard view of a serving repro serve --socket process",
    )
    pt.add_argument("--host", default="127.0.0.1")
    pt.add_argument("--port", type=int, required=True)
    pt.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between scrapes (default: 1.0)",
    )
    pt.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N scrapes (default: until interrupted)",
    )
    pt.add_argument(
        "--once",
        action="store_true",
        help="scrape once, print, exit (rates shown as '-')",
    )
    pt.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    pt.set_defaults(fn=_cmd_top)

    pp = sub.add_parser(
        "profile", help="one workload with full telemetry -> trace.json"
    )
    # Suite/benchmark/workload are validated by hand for one-line errors.
    pp.add_argument("--suite", default="dracc")
    pp.add_argument("--benchmark", type=int, default=22)
    pp.add_argument("--workload", default="postencil")
    pp.add_argument("--preset", default="test", choices=("test", "train", "ref"))
    pp.add_argument("--clock", default="ordinal", choices=("ordinal", "wall"))
    pp.add_argument("--output", default="trace.json")
    pp.add_argument(
        "--metrics",
        default=None,
        help="also write the metric snapshot JSON to this path",
    )
    pp.set_defaults(fn=_cmd_profile)

    pr = sub.add_parser(
        "report", help="findings + provenance -> report.jsonl (and HTML)"
    )
    # Suite and tools are validated by hand for one-line errors.
    pr.add_argument("--suite", default="buggy")
    pr.add_argument(
        "--tools",
        default="arbalest",
        help="comma-separated tool list (default: arbalest)",
    )
    pr.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="per-variable flight-recorder ring capacity",
    )
    pr.add_argument(
        "--engine",
        default="scalar",
        choices=("scalar", "columnar"),
        help="event dispatch engine (findings must not depend on it)",
    )
    pr.add_argument("--output", default="report.jsonl")
    pr.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="also write a self-contained HTML rendering",
    )
    pr.set_defaults(fn=_cmd_report)

    pf = sub.add_parser(
        "diff", help="compare two report/bench artifacts; exit 1 on regression"
    )
    pf.add_argument("old", help="baseline artifact (report JSONL or bench JSON)")
    pf.add_argument("new", help="candidate artifact of the same type")
    pf.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative slowdown growth tolerated in bench diffs (default 5%%)",
    )
    pf.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="bench-history ledger: calibrate per-metric thresholds from "
        "this machine's historical noise instead of the flat --threshold",
    )
    pf.set_defaults(fn=_cmd_diff)

    pn = sub.add_parser(
        "sentinel",
        help="statistical perf-regression verdicts over the bench-history "
        "ledger; exit 1 on regression",
    )
    pn.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="ledger to analyze (default: BENCH_history.jsonl)",
    )
    # Kind is validated by hand for a one-line error.
    pn.add_argument(
        "--kind",
        default="bench",
        help="entry kind to analyze: bench, serve-bench, or synth-bench",
    )
    pn.add_argument(
        "--window",
        type=int,
        default=5,
        help="change-point window: the last N runs are the candidate "
        "population (default: 5)",
    )
    pn.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        help="Mann-Whitney significance level (default: 0.05)",
    )
    pn.add_argument(
        "--min-shift",
        type=float,
        default=0.02,
        help="practical floor: smaller relative median shifts are never "
        "regressions (default: 0.02)",
    )
    pn.add_argument(
        "--seed",
        type=int,
        default=108,
        help="bootstrap RNG seed (verdicts are deterministic per seed)",
    )
    pn.add_argument(
        "--resamples",
        type=int,
        default=1000,
        help="bootstrap resamples for the shift CI (default: 1000)",
    )
    pn.add_argument(
        "--seed-from",
        nargs="+",
        default=None,
        metavar="ARTIFACT",
        help="first migrate these pre-ledger BENCH_*.json artifacts "
        "into the ledger",
    )
    pn.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable sentinel/1 payload",
    )
    pn.set_defaults(fn=_cmd_sentinel)

    pl = sub.add_parser("list", help="inventory of benchmarks and workloads")
    pl.add_argument(
        "--json",
        action="store_true",
        help="machine-readable inventory (for scripts/CI)",
    )
    pl.set_defaults(fn=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
