"""The flight recorder: a bounded per-variable timeline of mapping events.

ARBALEST's findings say *what* broke; the flight recorder keeps enough
history to say *how it got there*.  While a :class:`FlightRecorder` is
active, the runtime and the detector append one :class:`RecordedEvent` per
semantic event touching a mapped variable — map/unmap, ``target update``
transfers, kernel launches over the variable, and every access that moved
the variable's VSM state (steady-state accesses that do not change the
state are deliberately *not* recorded; they carry no causal information
and recording them would wreck the hot path).

Each variable gets its own bounded ring buffer (:class:`VariableRing`):
memory stays bounded no matter how long the run is, and eviction is
per-variable so a chatty array cannot push a quiet one's history out.

Timestamps are **event ordinals**.  When a telemetry registry is active
the recorder shares its ordinal clock (so provenance interleaves correctly
with spans); otherwise it advances a private counter.  Either way two runs
of a deterministic program produce byte-identical timelines.

Scoping mirrors :mod:`repro.telemetry.registry` exactly: the module
attribute :data:`ACTIVE` is ``None`` by default and every instrumentation
site guards with a single attribute load — the disabled fast path performs
no allocation at all (asserted by a tracemalloc test, like telemetry's).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from ..events.source import SourceLocation, UNKNOWN_LOCATION
from ..telemetry import registry as _telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tools.findings import Finding

#: The currently active recorder, or ``None`` (forensics disabled).
#: Instrumentation sites read this attribute directly; only :func:`scope`
#: (and tests) should write it.
ACTIVE: "FlightRecorder | None" = None

#: Default per-variable ring capacity.  Sixty-four events comfortably hold
#: every semantic event of the DRACC benchmarks and the interesting suffix
#: of the SPEC workloads' histories.
DEFAULT_CAPACITY = 64

#: How many retired (unmapped/freed) address ranges to remember, so that
#: use-after-free findings can still name the variable that used to live
#: at the faulting address.
RETIRED_RANGES = 256


class RecordedEvent:
    """One event on one variable's timeline."""

    __slots__ = (
        "ordinal",
        "kind",
        "device_id",
        "variable",
        "state_before",
        "state_after",
        "location",
        "detail",
    )

    def __init__(
        self,
        *,
        ordinal: int,
        kind: str,
        device_id: int,
        variable: str,
        state_before: str = "",
        state_after: str = "",
        location: SourceLocation = UNKNOWN_LOCATION,
        detail: str = "",
    ) -> None:
        self.ordinal = ordinal
        self.kind = kind
        self.device_id = device_id
        self.variable = variable
        self.state_before = state_before
        self.state_after = state_after
        self.location = location
        self.detail = detail

    def to_json(self) -> dict:
        """Stable JSON form (insertion order is the schema order)."""
        payload: dict = {
            "ordinal": self.ordinal,
            "kind": self.kind,
            "device": self.device_id,
        }
        if self.state_before or self.state_after:
            payload["before"] = self.state_before
            payload["after"] = self.state_after
        if self.location is not UNKNOWN_LOCATION:
            payload["at"] = str(self.location)
        if self.detail:
            payload["detail"] = self.detail
        return payload

    def render(self) -> str:
        parts = [f"@{self.ordinal}", self.kind, f"dev{self.device_id}"]
        if self.state_before or self.state_after:
            parts.append(f"{self.state_before or '?'}->{self.state_after or '?'}")
        if self.location is not UNKNOWN_LOCATION:
            parts.append(f"at {self.location}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordedEvent {self.render()}>"


class VariableRing:
    """A bounded ring of :class:`RecordedEvent`; oldest events are evicted."""

    __slots__ = ("capacity", "dropped", "_items", "_start")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: How many events eviction has discarded (reported in provenance
        #: so a truncated timeline is never mistaken for a complete one).
        self.dropped = 0
        self._items: list[RecordedEvent] = []
        self._start = 0

    def append(self, event: RecordedEvent) -> None:
        if len(self._items) < self.capacity:
            self._items.append(event)
        else:
            self._items[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def events(self) -> tuple[RecordedEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._items[self._start :] + self._items[: self._start])

    def __len__(self) -> int:
        return len(self._items)


class FlightRecorder:
    """Per-variable ring buffers plus an address-to-variable index.

    The address index exists for the baseline tools: ASan/MSan/Valgrind
    findings carry a faulting address but no variable name, and the
    recorder is the one component that watched every labelled range get
    mapped in.  ``resolve`` answers "whose storage is this address?" for
    both live and recently retired ranges.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rings: dict[str, VariableRing] = {}
        #: Private ordinal clock, used only when no telemetry is active.
        self.ordinal = 0
        #: Total events recorded (rings may have evicted some of them).
        self.records = 0
        self._ranges: list[tuple[int, int, int, str]] = []
        self._retired: list[tuple[int, int, int, str]] = []

    # -- clock -------------------------------------------------------------

    def tick(self) -> int:
        """The next event ordinal, shared with telemetry when active."""
        t = _telemetry.ACTIVE
        if t is not None:
            return t.tick()
        self.ordinal += 1
        return self.ordinal

    # -- recording ---------------------------------------------------------

    def record(
        self,
        variable: str,
        kind: str,
        *,
        device_id: int = 0,
        location: SourceLocation = UNKNOWN_LOCATION,
        state_before: str = "",
        state_after: str = "",
        detail: str = "",
    ) -> RecordedEvent:
        """Append one event to ``variable``'s ring (created on first use)."""
        ring = self.rings.get(variable)
        if ring is None:
            ring = self.rings[variable] = VariableRing(self.capacity)
        event = RecordedEvent(
            ordinal=self.tick(),
            kind=kind,
            device_id=device_id,
            variable=variable,
            state_before=state_before,
            state_after=state_after,
            location=location,
            detail=detail,
        )
        ring.append(event)
        self.records += 1
        return event

    def timeline(self, variable: str) -> tuple[tuple[RecordedEvent, ...], int]:
        """``variable``'s retained events (oldest first) and eviction count."""
        ring = self.rings.get(variable)
        if ring is None:
            return (), 0
        return ring.events(), ring.dropped

    # -- address index -----------------------------------------------------

    def register_range(
        self, device_id: int, base: int, nbytes: int, variable: str
    ) -> None:
        """Remember that ``variable``'s storage occupies this range."""
        if variable and nbytes > 0:
            self._ranges.append((device_id, base, base + nbytes, variable))

    def release_range(self, device_id: int, base: int) -> None:
        """Retire the range starting at ``base`` (unmap/free)."""
        for i in range(len(self._ranges) - 1, -1, -1):
            dev, lo, hi, var = self._ranges[i]
            if dev == device_id and lo == base:
                del self._ranges[i]
                self._retired.append((dev, lo, hi, var))
                if len(self._retired) > RETIRED_RANGES:
                    del self._retired[0]
                return

    def resolve(self, device_id: int, address: int) -> str:
        """The variable whose storage covers ``address``, or ``""``.

        Live ranges win over retired ones; within each class the most
        recently registered range wins (matching allocator reuse).
        """
        for ranges in (self._ranges, self._retired):
            for dev, lo, hi, var in reversed(ranges):
                if dev == device_id and lo <= address < hi:
                    return var
        return ""

    def resolve_near(self, device_id: int, address: int, slack: int = 4096) -> str:
        """Like :meth:`resolve`, with a nearest-range fallback.

        Buffer overflows fault *outside* every registered range by
        definition; the intended variable is the one whose range ends (or
        begins) closest to the faulting address.  ``slack`` bounds the gap
        so a wild access far from everything stays unattributed.
        """
        exact = self.resolve(device_id, address)
        if exact:
            return exact
        best = ""
        best_gap = slack + 1
        for ranges in (self._ranges, self._retired):
            for dev, lo, hi, var in reversed(ranges):
                if dev != device_id:
                    continue
                gap = address - hi if address >= hi else lo - address
                if 0 <= gap < best_gap:
                    best, best_gap = var, gap
        return best

    # -- finding enrichment ------------------------------------------------

    def resolve_variable(self, finding: "Finding") -> "Finding":
        """Fill in ``finding.variable`` from the address index if empty."""
        if finding.variable or not finding.address:
            return finding
        variable = self.resolve_near(finding.device_id, finding.address)
        if not variable:
            return finding
        from dataclasses import replace

        return replace(finding, variable=variable)

    def attach_provenance(self, finding: "Finding") -> "Finding":
        """Snapshot this recorder into ``finding.provenance``."""
        from .provenance import build_provenance

        return build_provenance(self, finding)

    # -- accounting --------------------------------------------------------

    def shadow_bytes(self) -> int:
        """Rough live footprint, for memory-bound assertions."""
        per_event = 120  # a RecordedEvent with slots, rounded up
        retained = sum(len(ring) for ring in self.rings.values())
        return retained * per_event + (len(self._ranges) + len(self._retired)) * 48


def variable_at(device_id: int, address: int) -> str:
    """Module-level resolve helper for tool finding sites.

    Returns ``""`` when no recorder is active, so callers can pass the
    result straight to ``Finding(variable=...)`` unconditionally.
    """
    rec = ACTIVE
    if rec is None:
        return ""
    return rec.resolve(device_id, address)


@contextmanager
def scope(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Activate ``recorder`` for the dynamic extent of the block (re-entrant)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = recorder
    try:
        yield recorder
    finally:
        ACTIVE = previous
