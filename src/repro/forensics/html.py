"""Self-contained HTML rendering of a report payload.

One file, no external assets: inline CSS only, every dynamic string
escaped.  The output is deterministic (it is a pure function of the
payload) and well-formed — a strict tag-balance test parses it in CI.
"""

from __future__ import annotations

from html import escape

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.4em; border-bottom: 2px solid #16213e; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #cbd5e1; padding: .25em .6em; text-align: left;
         font-size: .9em; }
th { background: #e2e8f0; }
.finding { border: 1px solid #cbd5e1; border-left: 4px solid #e94560;
           border-radius: 4px; padding: .6em .9em; margin: .8em 0; }
.finding h3 { margin: 0 0 .4em 0; font-size: 1em; }
.fp { color: #64748b; font-family: monospace; font-size: .85em; }
.why { background: #fef9c3; padding: .5em .7em; border-radius: 4px;
       margin: .5em 0; }
.timeline td { font-family: monospace; font-size: .85em; }
.muted { color: #64748b; font-size: .85em; }
code { background: #f1f5f9; padding: 0 .25em; border-radius: 3px; }
"""


def _event_row(e: dict) -> str:
    state = ""
    if "before" in e:
        state = f"{e.get('before') or '?'} → {e.get('after') or '?'}"
    return (
        "<tr>"
        f"<td>{e['ordinal']}</td>"
        f"<td>{escape(e['kind'])}</td>"
        f"<td>{e['device']}</td>"
        f"<td>{escape(state)}</td>"
        f"<td>{escape(e.get('at', ''))}</td>"
        f"<td>{escape(e.get('detail', ''))}</td>"
        "</tr>"
    )


def _finding_section(f: dict) -> str:
    title = f"{f['tool']}: {f['kind']}"
    if f["variable"]:
        title += f" of <code>{escape(f['variable'])}</code>"
    if f["location"]:
        title += f" at {escape(f['location'])}"
    parts = [
        '<div class="finding">',
        f"<h3>{title} <span class=\"fp\">#{escape(f['fingerprint'])}</span></h3>",
        f"<p>{escape(f['message'])}"
        + (f" <span class=\"muted\">(reported {f['count']}×)</span>" if f["count"] > 1 else "")
        + "</p>",
    ]
    if f["explanation"]:
        parts.append(f"<p class=\"why\">{escape(f['explanation'])}</p>")
    if f["events"]:
        parts.append('<table class="timeline">')
        parts.append(
            "<tr><th>ordinal</th><th>event</th><th>device</th>"
            "<th>state</th><th>where</th><th>detail</th></tr>"
        )
        if f["dropped"]:
            parts.append(
                f"<tr><td colspan=\"6\" class=\"muted\">… {f['dropped']} "
                "older event(s) evicted …</td></tr>"
            )
        parts += [_event_row(e) for e in f["events"]]
        parts.append("</table>")
    parts.append("</div>")
    return "\n".join(parts)


def render_html(payload: dict) -> str:
    """The whole report as one self-contained HTML page."""
    header = payload["header"]
    summary = payload["summary"]
    out = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>repro report — {escape(header['suite'])}</title>",
        f"<style>{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>Finding forensics — suite <code>{escape(header['suite'])}</code></h1>",
        "<table>",
        "<tr><th>tools</th><th>benchmarks</th><th>findings</th>"
        "<th>raw reports</th><th>ring capacity</th></tr>",
        "<tr>"
        f"<td>{escape(', '.join(header['tools']))}</td>"
        f"<td>{summary['benchmarks']}</td>"
        f"<td>{summary['findings']}</td>"
        f"<td>{summary['reports_total']}</td>"
        f"<td>{header['capacity']}</td>"
        "</tr>",
        "</table>",
    ]
    by_kind = summary.get("by_kind", {})
    if by_kind:
        out.append("<table>")
        out.append("<tr>" + "".join(f"<th>{escape(k)}</th>" for k in by_kind) + "</tr>")
        out.append("<tr>" + "".join(f"<td>{n}</td>" for n in by_kind.values()) + "</tr>")
        out.append("</table>")
    current_bench = None
    for f in payload["findings"]:
        if f["benchmark"] != current_bench:
            current_bench = f["benchmark"]
            out.append(f"<h2>{escape(f['bench_name'])}</h2>")
        out.append(_finding_section(f))
    if not payload["findings"]:
        out.append("<p>no findings</p>")
    out += ["</body>", "</html>"]
    return "\n".join(out) + "\n"
