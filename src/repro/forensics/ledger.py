"""The delivery ledger: fingerprint-keyed accounting of streamed findings.

The serve delivery guarantee is stated in fingerprints (PR-5's stable
cross-run identity): a session's delivered finding set must be *exactly*
the in-process baseline's — zero dropped, zero duplicated.  The ledger is
the bookkeeper that makes the claim checkable:

* every finding a shard surfaces is **offered**; the first offer per
  ``(tool, fingerprint)`` is *delivered*, later offers are *suppressed*
  (one event can reach two shards, and both may report the same bug —
  suppression is what keeps the wire stream duplicate-free);
* ``DEGRADED`` markers are recorded in-stream with their position, so a
  backpressure episode is visible in the ledger, not just in a counter;
* :meth:`verify_against` diffs the delivered set against a baseline
  fingerprint collection and returns the dropped/unexpected sets — the
  exact quantity the chaos-against-server campaign asserts to be empty.
"""

from __future__ import annotations

from typing import Iterable

from ..tools.findings import Finding

__all__ = ["DeliveryLedger"]


class DeliveryLedger:
    """Per-session delivery accounting, keyed on ``(tool, fingerprint)``."""

    def __init__(self) -> None:
        self._delivered: dict[tuple[str, str], dict] = {}
        self.suppressed_duplicates = 0
        self.markers: list[dict] = []

    def offer(
        self, tool: str, finding: Finding, count: int, *, shard: int
    ) -> bool:
        """Offer one finding for delivery; ``True`` iff it goes on the wire."""
        key = (tool, finding.fingerprint())
        if key in self._delivered:
            entry = self._delivered[key]
            entry["offers"] += 1
            entry["count"] = max(entry["count"], count)
            self.suppressed_duplicates += 1
            return False
        loc = finding.location
        self._delivered[key] = {
            "tool": tool,
            "fingerprint": finding.fingerprint(),
            "kind": finding.kind.value,
            "variable": finding.variable,
            "location": f"{loc.file}:{loc.line}" if finding.has_stack else "",
            "message": finding.message,
            "count": count,
            "shard": shard,
            "offers": 1,
            "position": len(self._delivered) + len(self.markers),
        }
        return True

    def mark_degraded(self, reason: str) -> None:
        """Record an in-stream DEGRADED marker (backpressure episode)."""
        self.markers.append(
            {
                "marker": "DEGRADED",
                "reason": reason,
                "position": len(self._delivered) + len(self.markers),
            }
        )

    # -- results -----------------------------------------------------------

    @property
    def delivered(self) -> list[dict]:
        """Delivered entries in wire order."""
        return sorted(self._delivered.values(), key=lambda e: e["position"])

    def fingerprints(self) -> tuple[tuple[str, str], ...]:
        """The delivered ``(tool, fingerprint)`` set, sorted."""
        return tuple(sorted(self._delivered))

    def verify_against(
        self, baseline: Iterable[tuple[str, str]]
    ) -> dict:
        """Diff the delivered set against a baseline ``(tool, fp)`` set.

        The returned dict is the delivery-guarantee verdict: ``ok`` iff
        nothing was dropped and nothing unexpected (or doubly) delivered.
        """
        base = set(baseline)
        got = set(self._delivered)
        dropped = sorted(base - got)
        unexpected = sorted(got - base)
        return {
            "baseline": len(base),
            "delivered": len(got),
            "dropped": [list(k) for k in dropped],
            "unexpected": [list(k) for k in unexpected],
            "suppressed_duplicates": self.suppressed_duplicates,
            "degraded_markers": len(self.markers),
            "ok": not dropped and not unexpected,
        }

    def to_json(self) -> dict:
        return {
            "delivered": self.delivered,
            "markers": list(self.markers),
            "suppressed_duplicates": self.suppressed_duplicates,
        }
