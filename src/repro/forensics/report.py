"""Report artifacts: findings + provenance + metrics, machine-diffable.

A *report* is one run's deduped findings with their provenance timelines
and (optionally) the telemetry metric snapshot, in a stable shape that
renders three ways:

* **JSON-lines** (the tracked artifact format, ``repro-report/1``): one
  ``header`` record, one ``finding`` record per deduped finding, one
  ``summary`` record.  Every field is ordinal-clock deterministic — two
  runs of the same program produce byte-identical files, which is what
  makes ``repro diff`` meaningful;
* **text** — the terminal rendering;
* **HTML** — a self-contained page (:mod:`repro.forensics.html`).

This module owns the *format*; :mod:`repro.harness.report` owns running
the benchmarks that fill it.
"""

from __future__ import annotations

import json

from ..tools.findings import Finding

#: Artifact schema tag; bump on incompatible layout changes.
SCHEMA = "repro-report/1"


def finding_entry(
    finding: Finding, count: int, *, benchmark: int, bench_name: str
) -> dict:
    """One ``finding`` record (plain JSON-serializable dict)."""
    loc = finding.location
    entry: dict = {
        "record": "finding",
        "benchmark": benchmark,
        "bench_name": bench_name,
        "tool": finding.tool,
        "kind": finding.kind.value,
        "variable": finding.variable,
        "fingerprint": finding.fingerprint(),
        "location": f"{loc.file}:{loc.line}" if finding.has_stack else "",
        "message": finding.message,
        "count": count,
    }
    provenance = finding.provenance
    if provenance is not None:
        entry["dropped"] = provenance.dropped
        entry["explanation"] = provenance.explanation
        entry["events"] = [e.to_json() for e in provenance.events]
    else:
        entry["dropped"] = 0
        entry["explanation"] = ""
        entry["events"] = []
    return entry


def build_summary(findings: list[dict], *, benchmarks: int) -> dict:
    by_kind: dict[str, int] = {}
    by_tool: dict[str, int] = {}
    for f in findings:
        by_kind[f["kind"]] = by_kind.get(f["kind"], 0) + 1
        by_tool[f["tool"]] = by_tool.get(f["tool"], 0) + 1
    return {
        "record": "summary",
        "benchmarks": benchmarks,
        "findings": len(findings),
        "reports_total": sum(f["count"] for f in findings),
        "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
        "by_tool": {k: by_tool[k] for k in sorted(by_tool)},
    }


def to_jsonl(payload: dict) -> str:
    """Serialize a report payload to the JSON-lines artifact form."""
    lines = [json.dumps(payload["header"], sort_keys=True)]
    lines += [json.dumps(f, sort_keys=True) for f in payload["findings"]]
    lines.append(json.dumps(payload["summary"], sort_keys=True))
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> dict:
    """Inverse of :func:`to_jsonl`; validates the schema tag."""
    header: dict | None = None
    findings: list[dict] = []
    summary: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("record")
        if kind == "header":
            if record.get("schema") != SCHEMA:
                raise ValueError(
                    f"line {lineno}: unsupported report schema "
                    f"{record.get('schema')!r} (expected {SCHEMA!r})"
                )
            header = record
        elif kind == "finding":
            findings.append(record)
        elif kind == "summary":
            summary = record
        else:
            raise ValueError(f"line {lineno}: unknown record type {kind!r}")
    if header is None:
        raise ValueError("not a report artifact: no header record")
    return {"header": header, "findings": findings, "summary": summary}


def write_report(payload: dict, path: str) -> None:
    """Atomic write of the JSONL artifact (tmp + rename, like the benches)."""
    import os

    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        fh.write(to_jsonl(payload))
    os.replace(tmp, path)


def load_report(path: str) -> dict:
    with open(path) as fh:
        return parse_jsonl(fh.read())


# -- text rendering ----------------------------------------------------------


def render_text(payload: dict) -> str:
    header = payload["header"]
    lines = [
        f"report: suite={header['suite']} tools={','.join(header['tools'])} "
        f"capacity={header['capacity']}",
        "",
    ]
    current_bench = None
    for f in payload["findings"]:
        if f["benchmark"] != current_bench:
            current_bench = f["benchmark"]
            lines.append(f"== {f['bench_name']} ==")
        where = f" at {f['location']}" if f["location"] else ""
        var = f" [{f['variable']}]" if f["variable"] else ""
        times = f" (x{f['count']})" if f["count"] > 1 else ""
        lines.append(
            f"  {f['tool']}: {f['kind']}{var}{where}{times}  "
            f"#{f['fingerprint']}"
        )
        if f["events"]:
            if f["dropped"]:
                lines.append(f"    ... {f['dropped']} older event(s) evicted ...")
            for e in f["events"]:
                parts = [f"@{e['ordinal']}", e["kind"], f"dev{e['device']}"]
                if "before" in e:
                    parts.append(f"{e['before'] or '?'}->{e['after'] or '?'}")
                if "at" in e:
                    parts.append(f"at {e['at']}")
                if "detail" in e:
                    parts.append(f"({e['detail']})")
                lines.append("    " + " ".join(parts))
        if f["explanation"]:
            lines.append(f"    why: {f['explanation']}")
    if not payload["findings"]:
        lines.append("no findings")
    summary = payload["summary"]
    lines += [
        "",
        f"{summary['findings']} finding(s) over {summary['benchmarks']} "
        f"benchmark(s), {summary['reports_total']} raw report(s) before "
        "dedup",
    ]
    for kind, n in summary.get("by_kind", {}).items():
        lines.append(f"  {kind}: {n}")
    return "\n".join(lines) + "\n"
