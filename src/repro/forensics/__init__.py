"""Finding forensics: flight recorder, provenance, reports, and diffing.

Only the recorder is imported eagerly — :mod:`repro.tools.base` loads this
package on the instrumented path, and the recorder depends on nothing but
the event/source and telemetry layers.  The provenance/report/diff modules
import the tools layer and are loaded lazily on first attribute access.
"""

from .recorder import (
    ACTIVE,
    DEFAULT_CAPACITY,
    FlightRecorder,
    RecordedEvent,
    VariableRing,
    scope,
    variable_at,
)

__all__ = [
    "ACTIVE",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "RecordedEvent",
    "VariableRing",
    "scope",
    "variable_at",
    "Provenance",
    "build_provenance",
    "explain",
    "DeliveryLedger",
]

_LAZY = {
    "Provenance": "provenance",
    "build_provenance": "provenance",
    "explain": "provenance",
    "DeliveryLedger": "ledger",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
