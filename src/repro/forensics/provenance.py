"""Provenance: turning a flight-recorder timeline into an explanation.

When a tool files a :class:`~repro.tools.findings.Finding` while a
:class:`~repro.forensics.recorder.FlightRecorder` is active, the recorder
snapshot for the finding's variable becomes a :class:`Provenance`: the
ordered events (state-before/state-after, device, source location), how
many older events the ring evicted, and a one-paragraph natural-language
explanation naming the offending access, the missing or incorrect data
movement that caused it, and the repair the programmer should apply.

The repair phrasing is shared with :class:`repro.core.repair.RepairEngine`
— the ``suggest_*`` functions below are the single source of those
sentences, so a provenance explanation and a live repair action describe
the same fix with the same words.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..events.source import UNKNOWN_LOCATION
from ..tools.findings import Finding, FindingKind
from .recorder import FlightRecorder, RecordedEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


# -- shared repair phrasing (also used by repro.core.repair) ----------------


def suggest_update(direction: str, variable: str) -> str:
    """The missing ``target update`` directive for a use of stale data."""
    return (
        f"#pragma omp target update {direction}({variable}) "
        "is missing before this read"
    )


def suggest_initialize(variable: str, side: str) -> str:
    """UUM is not repairable by data movement — say so, with the fix."""
    return (
        f"'{variable or '?'}' is read on the {side} before any "
        "initialization reaches it; no transfer can repair this — "
        "initialize the data or fix the map-type (e.g. map(to:) "
        "instead of map(alloc:/from:))"
    )


def suggest_ordering() -> str:
    """The depend/taskwait fix for unordered conflicting accesses."""
    return (
        "unordered accesses to the same storage: add a depend "
        "clause between the conflicting tasks, or a taskwait "
        "before the host-side access"
    )


def suggest_exit_from(variable: str) -> str:
    """The map-type fix when an unmap discards the only valid copy."""
    return (
        f"the unmap of '{variable or '?'}' discards the only "
        "valid copy; if the host reads it later, its map-type "
        "must include 'from' (tofrom, or target exit data "
        "map(from: ...))"
    )


def suggest_section(variable: str) -> str:
    """The array-section fix for a mapping-bounds overflow (§IV.D)."""
    name = variable or "?"
    return (
        f"the map clause for '{name}' does not cover this element; "
        f"extend the mapped array section (map({name}[start:count]) "
        "must include every accessed index)"
    )


def suggest_lifetime(variable: str) -> str:
    """The lifetime fix for a use of released storage."""
    return (
        f"the storage of '{variable or '?'}' was released before this "
        "use; keep the mapping alive across the access, or move the "
        "access before the target exit data / free"
    )


def suggest_single_release(variable: str) -> str:
    """The fix for releasing the same mapping twice."""
    return (
        f"'{variable or '?'}' is released more than once; each map/alloc "
        "must be released exactly once — drop the duplicate delete/free"
    )


# -- the provenance record ---------------------------------------------------


@dataclass(frozen=True)
class Provenance:
    """A finding's reconstructed history."""

    variable: str
    #: Ordered timeline, oldest first; the final event is always the
    #: synthetic ``finding`` event marking the offending access itself.
    events: tuple[RecordedEvent, ...]
    #: Events the ring evicted before the snapshot (0 = complete history).
    dropped: int
    #: One paragraph: offending access, bad/missing data movement, repair.
    explanation: str

    def to_json(self) -> dict:
        return {
            "variable": self.variable,
            "dropped": self.dropped,
            "explanation": self.explanation,
            "events": [e.to_json() for e in self.events],
        }

    def render(self) -> str:
        lines = [f"provenance of `{self.variable or '?'}`:"]
        if self.dropped:
            lines.append(f"  ... {self.dropped} older event(s) evicted ...")
        lines.extend(f"  {e.render()}" for e in self.events)
        lines.append(f"  why: {self.explanation}")
        return "\n".join(lines)


def build_provenance(recorder: FlightRecorder, finding: Finding) -> Finding:
    """Attach a :class:`Provenance` snapshot to ``finding``.

    The timeline is never empty: even when the ring holds nothing for the
    variable (a baseline tool's finding on an unlabelled range, say) the
    synthetic terminal event still names the offending access.
    """
    variable = finding.variable
    if variable:
        events, dropped = recorder.timeline(variable)
    else:
        events, dropped = (), 0
    terminal = RecordedEvent(
        ordinal=recorder.tick(),
        kind="finding",
        device_id=finding.device_id,
        variable=variable or "?",
        location=finding.location if finding.has_stack else UNKNOWN_LOCATION,
        detail=f"{finding.kind.value}: {finding.message}",
    )
    timeline = events + (terminal,)
    provenance = Provenance(
        variable=variable,
        events=timeline,
        dropped=dropped,
        explanation=explain(finding, timeline),
    )
    return replace(finding, provenance=provenance)


# -- the explanation ---------------------------------------------------------


def _last(
    timeline: tuple[RecordedEvent, ...], kinds: tuple[str, ...]
) -> RecordedEvent | None:
    for event in reversed(timeline):
        if event.kind in kinds:
            return event
    return None


def _where(event: RecordedEvent) -> str:
    if event.location is not UNKNOWN_LOCATION:
        return f" at {event.location}"
    return ""


def explain(finding: Finding, timeline: tuple[RecordedEvent, ...]) -> str:
    """One paragraph: the access, the data-movement defect, the repair."""
    var = finding.variable or "?"
    side = "device" if finding.device_id else "host"
    if finding.has_stack:
        loc = finding.location
        read_at = f" at {loc.file}:{loc.line}"
    else:
        read_at = ""
    kind = finding.kind

    if kind is FindingKind.USD:
        if finding.device_id == 0:
            writer = _last(timeline, ("device-write", "kernel-launch"))
            if writer is not None:
                inside = (
                    f" inside `{writer.detail}`"
                    if writer.kind == "kernel-launch" and writer.detail
                    else ""
                )
                opener = (
                    f"`{var}` was last written on device {writer.device_id} "
                    f"at ordinal {writer.ordinal}{inside}{_where(writer)}"
                )
            else:
                opener = f"the only valid copy of `{var}` lives on the accelerator"
            return (
                f"{opener} but was never mapped back before the host "
                f"read{read_at}; suggest: {suggest_update('from', var)}"
            )
        writer = _last(timeline, ("host-write",))
        if writer is not None:
            opener = (
                f"`{var}` was last written on the host at ordinal "
                f"{writer.ordinal}{_where(writer)}"
            )
        else:
            opener = f"the only valid copy of `{var}` lives on the host"
        return (
            f"{opener} but was never transferred to device "
            f"{finding.device_id} before the device read{read_at}; "
            f"suggest: {suggest_update('to', var)}"
        )

    if kind is FindingKind.UUM:
        mapped = _last(timeline, ("map",))
        because = (
            f" (the mapping at ordinal {mapped.ordinal}{_where(mapped)} "
            "allocated the device copy without copying data in)"
            if mapped is not None and finding.device_id
            else ""
        )
        return (
            f"the {side} read of `{var}`{read_at} observed memory that no "
            f"initialization ever reached{because}; "
            f"suggest: {suggest_initialize(var, side)}"
        )

    if kind is FindingKind.BO:
        mapped = _last(timeline, ("map",))
        section = (
            f" mapped at ordinal {mapped.ordinal}{_where(mapped)}"
            if mapped is not None
            else ""
        )
        return (
            f"the {side} access{read_at} runs outside the mapped section "
            f"of `{var}`{section}; only the mapped bytes exist on the "
            f"device, so the excess access corrupts a neighbour; "
            f"suggest: {suggest_section(var)}"
        )

    if kind is FindingKind.RACE:
        subject = f"`{var}`" if finding.variable else "the same storage"
        return (
            f"two unordered accesses touch {subject}{read_at} with no "
            f"happens-before edge between them; "
            f"suggest: {suggest_ordering()}"
        )

    if kind is FindingKind.UAF:
        released = _last(timeline, ("unmap", "free"))
        opener = (
            f"the storage of `{var}` was released at ordinal "
            f"{released.ordinal}{_where(released)}"
            if released is not None
            else f"the storage of `{var}` was already released"
        )
        return (
            f"{opener} yet the {side} access{read_at} uses it again; "
            f"suggest: {suggest_lifetime(var)}"
        )

    if kind is FindingKind.BAD_FREE:
        return (
            f"the release{read_at} has no live mapping/allocation to act "
            f"on — `{var}` was already released or never mapped; "
            f"suggest: {suggest_single_release(var)}"
        )

    if kind is FindingKind.WILD:
        return (
            f"the {side} access{read_at} touches memory outside every "
            f"live allocation; if it was meant to hit `{var}`, the "
            f"mapped section is too small; suggest: {suggest_section(var)}"
        )

    # TOOL_ERROR and any future kinds: restate the failure honestly.
    return (
        f"{finding.message}; the run continued but this tool's analysis "
        "state may be degraded from this point on"
    )
