"""Cross-run regression diffing of report and bench artifacts.

``repro diff old new`` compares two artifacts of the same type:

* **report** artifacts (``repro-report/1`` JSONL): findings are matched by
  ``(benchmark, tool, fingerprint)`` — the fingerprint is ordinal- and
  address-independent, so the same bug matches across runs — and
  classified as *new* (regression), *fixed*, or *changed* (same site,
  different report count);
* **bench** artifacts (``BENCH_fig8.json`` shape): the summary geomean
  slowdowns are compared; any geomean that grew by more than the relative
  ``threshold`` is a regression;
* **serve-bench** artifacts (``BENCH_serve.json``, ``serve-bench/1``
  shape): throughput (events/sec) dropping or p99 frame latency growing
  by more than the relative ``threshold`` is a regression, and a
  candidate whose delivery verdict is false regresses at any speed.
  Observability fields gate too: artifacts measured under different SLO
  specs refuse to compare (like an engine mismatch), and a candidate
  whose SLO watchdog is still burning regresses regardless of timing;
* **synth-bench** artifacts (``BENCH_synth.json``, ``synth-bench/1``
  shape): synthesized transfer bytes growing on any program, or a
  clean/equivalence verdict lost, is a regression — no threshold, the
  byte counts are deterministic.

A diff with at least one regression is what makes the CLI exit non-zero —
the CI gate in one command.
"""

from __future__ import annotations

import json

from .report import parse_jsonl

#: Default relative slowdown-growth tolerance for bench diffs (5%).
#: This is the *fallback* gate: ``repro diff --history`` replaces it with
#: per-metric noise-calibrated thresholds bootstrapped from the bench
#: ledger (:func:`repro.observe.sentinel.noise_thresholds`), and
#: ``repro sentinel`` supersedes two-artifact diffing entirely with
#: change-point statistics over the full history window.
DEFAULT_THRESHOLD = 0.05

#: Which per-workload config column feeds each summary geomean — used to
#: attribute a geomean regression to the cells that drove it.
GEOMEAN_CONFIGS = {
    "arbalest_slowdown_geomean": "arbalest",
    "arbalest_cert_slowdown_geomean": "arbalest-cert",
    "arbalest_rec_slowdown_geomean": "arbalest-rec",
    "arbalest_prof_slowdown_geomean": "arbalest-prof",
    "recorder_overhead_geomean": "arbalest-rec",
    "profiler_overhead_geomean": "arbalest-prof",
}


def load_artifact(path: str) -> tuple[str, dict]:
    """Sniff and load ``path`` as ``("report", ...)`` or ``("bench", ...)``."""
    with open(path) as fh:
        text = fh.read()
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict):
        if whole.get("artifact") == "serve-bench/1":
            return "serve-bench", whole
        if whole.get("artifact") == "synth-bench/1":
            return "synth-bench", whole
        if "workloads" in whole and "summary" in whole:
            return "bench", whole
        raise ValueError(
            f"{path}: JSON document is neither a bench artifact "
            "(workloads+summary), a serve-bench artifact (serve-bench/1), "
            "a synth-bench artifact (synth-bench/1), nor a JSONL report"
        )
    # Not one JSON document: JSON-lines report (parse_jsonl validates).
    return "report", parse_jsonl(text)


# -- report diffing ----------------------------------------------------------


def diff_reports(old: dict, new: dict) -> dict:
    """Classify findings as new / fixed / changed between two reports."""

    def index(payload: dict) -> dict[tuple, dict]:
        return {
            (f["benchmark"], f["tool"], f["fingerprint"]): f
            for f in payload["findings"]
        }

    a, b = index(old), index(new)
    new_keys = sorted(set(b) - set(a))
    fixed_keys = sorted(set(a) - set(b))
    changed = [
        {"old": a[k], "new": b[k]}
        for k in sorted(set(a) & set(b))
        if a[k]["count"] != b[k]["count"]
    ]
    return {
        "type": "report",
        "new": [b[k] for k in new_keys],
        "fixed": [a[k] for k in fixed_keys],
        "changed": changed,
        # Only *new* findings gate: fixed bugs and count drift are progress
        # or noise, not regressions.
        "regression": bool(new_keys),
    }


# -- bench diffing -----------------------------------------------------------


def _geomean_contributors(
    old: dict, new: dict, config: str, *, limit: int = 3
) -> list[dict]:
    """The per-workload cells that drove a geomean move, worst first."""
    rows: list[dict] = []
    shared = set(old.get("workloads", {})) & set(new.get("workloads", {}))
    for w in sorted(shared):
        o = old["workloads"][w].get(config, {}).get("slowdown")
        n = new["workloads"][w].get(config, {}).get("slowdown")
        if o and n:
            rows.append(
                {
                    "workload": w,
                    "config": config,
                    "old": o,
                    "new": n,
                    "rel": round((n - o) / o, 4),
                }
            )
    rows.sort(key=lambda r: (-r["rel"], r["workload"]))
    return rows[:limit]


def diff_bench(
    old: dict,
    new: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
) -> dict:
    """Compare summary geomeans (and per-workload detector slowdowns).

    Artifacts must come from the same event engine: scalar and columnar
    timings are not comparable (that is the whole point of the columnar
    engine), so a mismatch is an error, not a regression verdict.
    Artifacts predating the ``engine`` key are treated as scalar.

    ``thresholds`` overrides the flat ``threshold`` per summary key —
    this is how ``repro diff --history`` feeds in noise-calibrated gates
    bootstrapped from the bench ledger.  Every regressed geomean is
    attributed to the top per-workload cells that drove it.
    """
    old_engine = old.get("engine", "scalar")
    new_engine = new.get("engine", "scalar")
    if old_engine != new_engine:
        raise ValueError(
            f"cannot diff bench artifacts from different engines: "
            f"baseline is {old_engine!r}, candidate is {new_engine!r}"
        )
    thresholds = thresholds or {}
    deltas: dict[str, dict] = {}
    regressions: list[str] = []
    contributors: dict[str, list[dict]] = {}
    old_summary = old.get("summary", {})
    new_summary = new.get("summary", {})
    for key in sorted(set(old_summary) & set(new_summary)):
        o, n = old_summary[key], new_summary[key]
        if not isinstance(o, (int, float)) or not isinstance(n, (int, float)):
            continue
        rel = (n - o) / o if o else 0.0
        gate = thresholds.get(key, threshold)
        deltas[key] = {"old": o, "new": n, "rel": round(rel, 4)}
        if key in thresholds:
            deltas[key]["threshold"] = gate
        if key.endswith("geomean") and rel > gate:
            regressions.append(key)
            config = GEOMEAN_CONFIGS.get(key)
            if config is not None:
                top = _geomean_contributors(old, new, config)
                if top:
                    contributors[key] = top
    workloads: dict[str, dict] = {}
    shared = set(old.get("workloads", {})) & set(new.get("workloads", {}))
    for w in sorted(shared):
        o = old["workloads"][w].get("arbalest", {}).get("slowdown")
        n = new["workloads"][w].get("arbalest", {}).get("slowdown")
        if o and n:
            workloads[w] = {"old": o, "new": n, "rel": round((n - o) / o, 4)}
    return {
        "type": "bench",
        "threshold": threshold,
        "calibrated": sorted(thresholds) if thresholds else [],
        "deltas": deltas,
        "workloads": workloads,
        "contributors": contributors,
        "regressions": regressions,
        "regression": bool(regressions),
    }


def diff_serve_bench(
    old: dict, new: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Compare two serve-bench artifacts: throughput down or p99 up.

    Same engine-compatibility rule as fig-8 benches: scalar and columnar
    throughputs measure different dispatch paths, so a cross-engine diff
    is an error, not a verdict.  A candidate with ``delivery_ok`` false
    is a regression regardless of timing — a server that sheds findings
    has no throughput worth reporting.

    Observability-era artifacts carry an ``observability`` section.  Two
    rules extend the gate:

    * artifacts measured under **different SLO specs** are incomparable —
      the watchdog's burn counts mean different things — so a spec
      mismatch is an error, like an engine mismatch, not a verdict;
    * a candidate whose watchdog is **still burning** at the end of the
      bench regresses regardless of timing: the run violated its own
      SLOs while producing the numbers being compared.
    """
    old_engine = old.get("engine", "columnar")
    new_engine = new.get("engine", "columnar")
    if old_engine != new_engine:
        raise ValueError(
            f"cannot diff serve-bench artifacts from different engines: "
            f"baseline is {old_engine!r}, candidate is {new_engine!r}"
        )
    old_obs = old.get("observability") or {}
    new_obs = new.get("observability") or {}
    old_slos = old_obs.get("slos")
    new_slos = new_obs.get("slos")
    if old_slos is not None and new_slos is not None and old_slos != new_slos:
        old_names = ", ".join(s.get("name", "?") for s in old_slos)
        new_names = ", ".join(s.get("name", "?") for s in new_slos)
        raise ValueError(
            "cannot diff serve-bench artifacts measured under different "
            f"SLO specs: baseline has [{old_names}], candidate has "
            f"[{new_names}]"
        )
    deltas: dict[str, dict] = {}
    regressions: list[str] = []
    old_summary = old.get("summary", {})
    new_summary = new.get("summary", {})
    for key in sorted(set(old_summary) & set(new_summary)):
        o, n = old_summary[key], new_summary[key]
        if not isinstance(o, (int, float)) or not isinstance(n, (int, float)):
            continue
        rel = (n - o) / o if o else 0.0
        deltas[key] = {"old": o, "new": n, "rel": round(rel, 4)}
        # Throughput regresses downward; latency regresses upward.
        if key == "events_per_sec" and rel < -threshold:
            regressions.append(key)
        elif key.endswith("latency_us") and key.startswith("p99") and rel > threshold:
            regressions.append(key)
    if not new.get("delivery_ok", True):
        regressions.append("delivery_ok")
    burning = (new_obs.get("watchdog") or {}).get("burning") or []
    if burning:
        regressions.append("slo_burning")
    observability: dict[str, dict] = {}
    for key in (
        "redeliveries",
        "wire_decode_errors",
        "journal_replay_errors",
        "worker_restarts",
    ):
        o, n = old_obs.get(key), new_obs.get(key)
        if isinstance(o, (int, float)) and isinstance(n, (int, float)):
            observability[key] = {"old": o, "new": n, "delta": n - o}
    old_watch = old_obs.get("watchdog") or {}
    new_watch = new_obs.get("watchdog") or {}
    for key in ("burn_events", "clear_events"):
        o, n = old_watch.get(key), new_watch.get(key)
        if isinstance(o, (int, float)) and isinstance(n, (int, float)):
            observability[key] = {"old": o, "new": n, "delta": n - o}
    return {
        "type": "serve-bench",
        "threshold": threshold,
        "engine": new_engine,
        "deltas": deltas,
        "observability": observability,
        "burning": sorted(burning),
        "regressions": regressions,
        "regression": bool(regressions),
    }


def diff_synth_bench(old: dict, new: dict) -> dict:
    """Compare two synthesis-matrix artifacts (``synth-bench/1``).

    Transfer bytes are deterministic (counted, not timed), so there is no
    tolerance threshold: on any shared program, synthesized bytes growing,
    a clean-on-both-engines verdict lost, or value equivalence lost is a
    regression; so is a program disappearing from the corpus.  Byte
    *savings* and new programs are reported as progress, not gated.
    """
    old_programs = old.get("programs", {})
    new_programs = new.get("programs", {})
    regressions: list[str] = []
    programs: dict[str, dict] = {}
    for name in sorted(set(old_programs) - set(new_programs)):
        regressions.append(f"{name}: missing from candidate")
    for name in sorted(set(old_programs) & set(new_programs)):
        o, n = old_programs[name], new_programs[name]
        entry: dict = {
            "synth_bytes": {"old": o["synth_bytes"], "new": n["synth_bytes"]}
        }
        if n["synth_bytes"] > o["synth_bytes"]:
            regressions.append(
                f"{name}: synthesized bytes grew "
                f"{o['synth_bytes']} -> {n['synth_bytes']}"
            )
        for key in ("clean_scalar", "clean_columnar", "equivalent"):
            entry[key] = {"old": o.get(key, True), "new": n.get(key, True)}
            if o.get(key, True) and not n.get(key, True):
                regressions.append(f"{name}: {key} verdict lost")
        programs[name] = entry
    deltas: dict[str, dict] = {}
    old_summary = old.get("summary", {})
    new_summary = new.get("summary", {})
    for key in sorted(set(old_summary) & set(new_summary)):
        o, n = old_summary[key], new_summary[key]
        if isinstance(o, (int, float)) and isinstance(n, (int, float)):
            deltas[key] = {"old": o, "new": n, "delta": n - o}
    return {
        "type": "synth-bench",
        "deltas": deltas,
        "programs": programs,
        "new_programs": sorted(set(new_programs) - set(old_programs)),
        "regressions": regressions,
        "regression": bool(regressions),
    }


def diff_artifacts(
    old_path: str,
    new_path: str,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    history: str | None = None,
) -> dict:
    """Load two artifacts, require matching types, and diff them.

    ``history`` (a bench-history ledger path) replaces the flat threshold
    with per-metric noise-calibrated gates for bench diffs; the other
    artifact types ignore it.
    """
    old_type, old_payload = load_artifact(old_path)
    new_type, new_payload = load_artifact(new_path)
    if old_type != new_type:
        raise ValueError(
            f"cannot diff a {old_type} artifact against a {new_type} artifact"
        )
    if old_type == "report":
        return diff_reports(old_payload, new_payload)
    if old_type == "serve-bench":
        return diff_serve_bench(old_payload, new_payload, threshold=threshold)
    if old_type == "synth-bench":
        return diff_synth_bench(old_payload, new_payload)
    thresholds = None
    if history is not None:
        from ..observe.sentinel import noise_thresholds

        thresholds = noise_thresholds(history)
    return diff_bench(
        old_payload, new_payload, threshold=threshold, thresholds=thresholds
    )


# -- rendering ---------------------------------------------------------------


def _finding_line(f: dict) -> str:
    var = f" [{f['variable']}]" if f.get("variable") else ""
    where = f" at {f['location']}" if f.get("location") else ""
    return (
        f"{f['bench_name']}: {f['tool']}: {f['kind']}{var}{where}  "
        f"#{f['fingerprint']}"
    )


def render_diff(result: dict) -> str:
    lines: list[str] = []
    if result["type"] == "report":
        for f in result["new"]:
            lines.append(f"NEW      {_finding_line(f)}")
        for f in result["fixed"]:
            lines.append(f"FIXED    {_finding_line(f)}")
        for pair in result["changed"]:
            lines.append(
                f"CHANGED  {_finding_line(pair['new'])} "
                f"(count {pair['old']['count']} -> {pair['new']['count']})"
            )
        if not lines:
            lines.append("reports are identical (by fingerprint)")
        lines.append("")
        lines.append(
            f"{len(result['new'])} new, {len(result['fixed'])} fixed, "
            f"{len(result['changed'])} changed"
        )
    elif result["type"] == "synth-bench":
        for key, d in result["deltas"].items():
            sign = "+" if d["delta"] >= 0 else ""
            lines.append(f"{key}: {d['old']} -> {d['new']} ({sign}{d['delta']})")
        for name in result.get("new_programs", []):
            lines.append(f"NEW PROGRAM  {name}")
        for message in result["regressions"]:
            lines.append(f"REGRESSION  {message}")
        lines.append("")
        lines.append(
            "REGRESSION: " + ", ".join(result["regressions"])
            if result["regression"]
            else "synthesized mappings hold: no bytes grew, no verdict lost"
        )
    elif result["type"] == "serve-bench":
        for key, d in result["deltas"].items():
            marker = " << REGRESSION" if key in result["regressions"] else ""
            lines.append(
                f"{key}: {d['old']} -> {d['new']} ({d['rel']:+.1%}){marker}"
            )
        for key, d in result.get("observability", {}).items():
            sign = "+" if d["delta"] >= 0 else ""
            lines.append(f"  {key}: {d['old']} -> {d['new']} ({sign}{d['delta']})")
        if "delivery_ok" in result["regressions"]:
            lines.append("delivery_ok: false << REGRESSION (findings were lost)")
        if "slo_burning" in result["regressions"]:
            lines.append(
                "slo burning: "
                + ", ".join(result.get("burning", []))
                + " << REGRESSION (candidate ended its bench in violation)"
            )
        lines.append("")
        verdict = (
            "REGRESSION: " + ", ".join(result["regressions"])
            if result["regression"]
            else f"within threshold ({result['threshold']:.0%})"
        )
        lines.append(verdict)
    else:
        for key, d in result["deltas"].items():
            marker = " << REGRESSION" if key in result["regressions"] else ""
            gate = (
                f" [gate {d['threshold']:.1%}]" if "threshold" in d else ""
            )
            lines.append(
                f"{key}: {d['old']} -> {d['new']} "
                f"({d['rel']:+.1%}){gate}{marker}"
            )
            for c in result.get("contributors", {}).get(key, []):
                lines.append(
                    f"    driven by {c['workload']} [{c['config']}]: "
                    f"{c['old']} -> {c['new']} ({c['rel']:+.1%})"
                )
        for w, d in result["workloads"].items():
            lines.append(
                f"  {w} arbalest slowdown: {d['old']} -> {d['new']} "
                f"({d['rel']:+.1%})"
            )
        lines.append("")
        if result.get("calibrated"):
            lines.append(
                "thresholds calibrated from bench history for: "
                + ", ".join(result["calibrated"])
            )
        verdict = (
            f"REGRESSION: {', '.join(result['regressions'])} grew beyond "
            "the gate"
            if result["regression"]
            else f"within threshold ({result['threshold']:.0%})"
        )
        lines.append(verdict)
    lines.append("regression" if result["regression"] else "clean")
    return "\n".join(lines) + "\n"
