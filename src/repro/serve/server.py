"""The analysis server: sessions, ordering, backpressure, finding stream.

One :class:`AnalysisServer` hosts many client sessions.  Each session is
one analysis run: its own :class:`~repro.serve.supervisor.Supervisor`
(sharded detector state — two clients' address spaces must never mix) and
its own :class:`~repro.forensics.ledger.DeliveryLedger`.

**Ordering.**  Findings must be independent of transport mischief, so the
server applies EVENT frames strictly in sequence order.  A frame arriving
early (gap before it) parks in a bounded reorder buffer; a frame arriving
twice is acknowledged again and dropped (the ACK, not the frame, is what
the client needs); a gap elicits a NACK naming the next expected sequence
number so the client can retransmit without waiting for a timeout.

**Backpressure.**  The reorder buffer is the inbound queue, and it is
bounded.  When a slow or lossy client overflows it, the server *sheds the
parked frame* — which is recoverable, the client still holds it — and
marks the session ``DEGRADED`` in the finding stream.  Findings are never
shed: degradation costs latency and a marker, not results.

**Drain.**  FIN (and SIGTERM, via :meth:`AnalysisServer.shutdown`) flushes
every shard's parked columnar batch before findings are collected, so an
in-flight batch can never be lost to shutdown timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events.wire import Frame, FrameDecoder, FrameKind, json_payload
from ..forensics.ledger import DeliveryLedger
from ..telemetry import registry as _telemetry
from .supervisor import Supervisor

__all__ = ["AnalysisServer", "ServerConfig", "ServerConnection"]


@dataclass(frozen=True)
class ServerConfig:
    """Server-wide shape of every session's detector stack."""

    n_shards: int = 4
    engine: str = "columnar"
    tools: tuple[str, ...] = ("arbalest",)
    #: Reorder-buffer (inbound queue) capacity per session, in frames.
    queue_cap: int = 256


@dataclass
class _Session:
    """One client's run: detector shards, ordering state, delivery ledger."""

    client_id: int
    supervisor: Supervisor
    ledger: DeliveryLedger = field(default_factory=DeliveryLedger)
    meta: dict = field(default_factory=dict)
    next_seq: int = 0
    reorder: dict[int, dict] = field(default_factory=dict)
    finished: bool = False
    degraded: bool = False
    out_seq: int = 0
    dup_frames: int = 0
    shed_frames: int = 0
    nacks_sent: int = 0

    def reply(self, kind: FrameKind, payload: bytes = b"", *, seq: int | None = None) -> Frame:
        if seq is None:
            seq = self.out_seq
            self.out_seq += 1
        return Frame(kind, self.client_id, seq, payload)


class AnalysisServer:
    """Frame-in, frames-out protocol engine (transport-agnostic)."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.sessions: dict[int, _Session] = {}
        self.frames_handled = 0
        self.drained = False

    # -- sessions ----------------------------------------------------------

    def session(self, client_id: int) -> _Session:
        session = self.sessions.get(client_id)
        if session is None:
            session = _Session(
                client_id=client_id,
                supervisor=Supervisor(
                    n_shards=self.config.n_shards,
                    engine=self.config.engine,
                    tools=self.config.tools,
                ),
            )
            self.sessions[client_id] = session
        return session

    # -- frame handling ----------------------------------------------------

    def handle_frame(self, frame: Frame) -> list[Frame]:
        """Process one inbound frame; returns the response frames."""
        self.frames_handled += 1
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            telemetry.count(f"serve.frames.{frame.kind.name.lower()}")
        if frame.kind is FrameKind.HELLO:
            session = self.session(frame.client_id)
            if frame.payload and not session.meta:
                session.meta = frame.json()
            return [session.reply(FrameKind.ACK, seq=frame.seq)]
        if frame.kind is FrameKind.EVENT:
            return self._handle_event(frame)
        if frame.kind is FrameKind.FIN:
            return self._handle_fin(frame)
        return [
            Frame(
                FrameKind.ERROR,
                frame.client_id,
                frame.seq,
                json_payload(
                    {"error": f"unexpected {frame.kind.name} frame from client"}
                ),
            )
        ]

    def _handle_event(self, frame: Frame) -> list[Frame]:
        session = self.session(frame.client_id)
        if session.finished:
            return [
                session.reply(
                    FrameKind.ERROR,
                    json_payload({"error": "session already finished"}),
                )
            ]
        seq = frame.seq
        if seq < session.next_seq:
            # Idempotent re-delivery of an *applied* frame: the client
            # lost our ACK (or the transport duplicated the frame).
            # Re-acknowledge with the cumulative watermark, drop the copy.
            session.dup_frames += 1
            telemetry = _telemetry.ACTIVE
            if telemetry is not None:
                telemetry.count("serve.dup_frames")
            return [session.reply(FrameKind.ACK, seq=session.next_seq - 1)]
        if seq in session.reorder:
            # Duplicate of a *parked* frame.  Parked is not applied: an
            # ACK here would claim durability the gap denies, so renew
            # the NACK for the sequence number actually missing.
            session.dup_frames += 1
            session.nacks_sent += 1
            return [session.reply(FrameKind.NACK, seq=session.next_seq)]
        if seq > session.next_seq:
            if len(session.reorder) >= self.config.queue_cap:
                # Backpressure: shed the parked frame (the client still
                # holds it) and mark the stream DEGRADED — latency is
                # sacrificed, findings are not.
                session.shed_frames += 1
                if not session.degraded:
                    session.degraded = True
                    session.ledger.mark_degraded(
                        f"reorder buffer overflow at seq {seq} "
                        f"(cap {self.config.queue_cap}): frame shed, "
                        "retransmission required"
                    )
                telemetry = _telemetry.ACTIVE
                if telemetry is not None:
                    telemetry.count("serve.shed_frames")
            else:
                session.reorder[seq] = frame.json()
            session.nacks_sent += 1
            return [session.reply(FrameKind.NACK, seq=session.next_seq)]
        # In-order: apply, then drain everything the gap was blocking.
        session.supervisor.dispatch(session.client_id, seq, frame.json())
        session.next_seq += 1
        while session.next_seq in session.reorder:
            event = session.reorder.pop(session.next_seq)
            session.supervisor.dispatch(
                session.client_id, session.next_seq, event
            )
            session.next_seq += 1
        # Cumulative acknowledgement of everything applied so far.
        return [session.reply(FrameKind.ACK, seq=session.next_seq - 1)]

    def _handle_fin(self, frame: Frame) -> list[Frame]:
        session = self.session(frame.client_id)
        if session.finished:
            return [session.reply(FrameKind.ACK, seq=frame.seq)]
        if frame.seq != session.next_seq or session.reorder:
            # The stream has holes: the client must retransmit before the
            # session can close — finishing now would drop findings.
            session.nacks_sent += 1
            return [session.reply(FrameKind.NACK, seq=session.next_seq)]
        session.finished = True
        supervisor = session.supervisor
        supervisor.drain()
        for shard, tool, finding, count in supervisor.findings():
            session.ledger.offer(tool, finding, count, shard=shard)
        responses = [session.reply(FrameKind.ACK, seq=frame.seq)]
        stream: list[tuple[int, Frame]] = []
        for entry in session.ledger.delivered:
            stream.append(
                (
                    entry["position"],
                    session.reply(FrameKind.FINDING, json_payload(entry)),
                )
            )
        for marker in session.ledger.markers:
            stream.append(
                (
                    marker["position"],
                    session.reply(FrameKind.DEGRADED, json_payload(marker)),
                )
            )
        responses += [f for _, f in sorted(stream, key=lambda x: x[0])]
        responses.append(
            session.reply(FrameKind.RESULT, json_payload(self._result(session)))
        )
        return responses

    def _result(self, session: _Session) -> dict:
        sup = session.supervisor.stats()
        return {
            "events": session.supervisor.events_delivered,
            "findings": len(session.ledger.delivered),
            "suppressed_duplicates": session.ledger.suppressed_duplicates,
            "degraded": session.degraded,
            "degraded_markers": len(session.ledger.markers),
            "dup_frames": session.dup_frames,
            "shed_frames": session.shed_frames,
            "nacks_sent": session.nacks_sent,
            "worker_restarts": sup["worker_restarts"],
            "duplicate_deliveries_dropped": sup["duplicates_dropped"],
            "shards": len(session.supervisor.workers),
        }

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> dict:
        """Graceful drain (the SIGTERM path): flush every parked batch.

        Findings already computed stay available; unfinished sessions get
        their columnar batches flushed so no parked access is lost, and
        the per-session stats are returned for the shutdown log line.
        """
        for session in self.sessions.values():
            if not session.finished:
                session.supervisor.drain()
        self.drained = True
        return {
            "sessions": len(self.sessions),
            "unfinished": sum(
                1 for s in self.sessions.values() if not s.finished
            ),
        }

    def connection(self) -> "ServerConnection":
        """A byte-level connection adapter (one per transport connection)."""
        return ServerConnection(self)


class ServerConnection:
    """Byte-stream adapter: decoder in, encoded response frames out."""

    def __init__(self, server: AnalysisServer):
        self.server = server
        self.decoder = FrameDecoder()

    def handle_bytes(self, data: bytes) -> bytes:
        """Feed raw transport bytes; returns the encoded responses."""
        from ..events.wire import encode_frame

        out = bytearray()
        for frame in self.decoder.feed(data):
            for response in self.server.handle_frame(frame):
                out.extend(encode_frame(response))
        return bytes(out)

    def eof(self) -> list:
        """End of stream: reject (never pad) any truncated trailing frame."""
        return self.decoder.eof()
