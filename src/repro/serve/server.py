"""The analysis server: sessions, ordering, backpressure, finding stream.

One :class:`AnalysisServer` hosts many client sessions.  Each session is
one analysis run: its own :class:`~repro.serve.supervisor.Supervisor`
(sharded detector state — two clients' address spaces must never mix) and
its own :class:`~repro.forensics.ledger.DeliveryLedger`.

**Ordering.**  Findings must be independent of transport mischief, so the
server applies EVENT frames strictly in sequence order.  A frame arriving
early (gap before it) parks in a bounded reorder buffer; a frame arriving
twice is acknowledged again and dropped (the ACK, not the frame, is what
the client needs); a gap elicits a NACK naming the next expected sequence
number so the client can retransmit without waiting for a timeout.

**Backpressure.**  The reorder buffer is the inbound queue, and it is
bounded.  When a slow or lossy client overflows it, the server *sheds the
parked frame* — which is recoverable, the client still holds it — and
marks the session ``DEGRADED`` in the finding stream.  Findings are never
shed: degradation costs latency and a marker, not results.

**Drain.**  FIN (and SIGTERM, via :meth:`AnalysisServer.shutdown`) flushes
every shard's parked columnar batch before findings are collected, so an
in-flight batch can never be lost to shutdown timing.
"""

from __future__ import annotations

from time import perf_counter
from dataclasses import dataclass, field

from ..events.wire import Frame, FrameDecoder, FrameKind, json_payload
from ..forensics.ledger import DeliveryLedger
from ..telemetry import registry as _telemetry
from .supervisor import Supervisor

__all__ = ["AnalysisServer", "ServerConfig", "ServerConnection"]


@dataclass(frozen=True)
class ServerConfig:
    """Server-wide shape of every session's detector stack."""

    n_shards: int = 4
    engine: str = "columnar"
    tools: tuple[str, ...] = ("arbalest",)
    #: Reorder-buffer (inbound queue) capacity per session, in frames.
    queue_cap: int = 256


@dataclass
class _Session:
    """One client's run: detector shards, ordering state, delivery ledger."""

    client_id: int
    supervisor: Supervisor
    ledger: DeliveryLedger = field(default_factory=DeliveryLedger)
    meta: dict = field(default_factory=dict)
    next_seq: int = 0
    reorder: dict[int, dict] = field(default_factory=dict)
    finished: bool = False
    degraded: bool = False
    out_seq: int = 0
    dup_frames: int = 0
    shed_frames: int = 0
    nacks_sent: int = 0

    def reply(self, kind: FrameKind, payload: bytes = b"", *, seq: int | None = None) -> Frame:
        if seq is None:
            seq = self.out_seq
            self.out_seq += 1
        return Frame(kind, self.client_id, seq, payload)


class AnalysisServer:
    """Frame-in, frames-out protocol engine (transport-agnostic).

    ``observer`` is the optional live observability bundle
    (:class:`~repro.observe.observer.ServeObserver`).  When it is
    ``None`` — the default — every instrumentation site below is a
    single ``is not None`` check and the hot path allocates nothing for
    observability.
    """

    def __init__(self, config: ServerConfig | None = None, observer=None):
        self.config = config or ServerConfig()
        self.observer = observer
        self.sessions: dict[int, _Session] = {}
        self.frames_handled = 0
        self.drained = False

    # -- sessions ----------------------------------------------------------

    def session(self, client_id: int) -> _Session:
        session = self.sessions.get(client_id)
        if session is None:
            session = _Session(
                client_id=client_id,
                supervisor=Supervisor(
                    n_shards=self.config.n_shards,
                    engine=self.config.engine,
                    tools=self.config.tools,
                    observer=self.observer,
                ),
            )
            self.sessions[client_id] = session
        return session

    # -- frame handling ----------------------------------------------------

    def handle_frame(self, frame: Frame) -> list[Frame]:
        """Process one inbound frame; returns the response frames."""
        observer = self.observer
        if observer is None:
            return self._handle_frame(frame)
        spans = observer.server_spans
        if spans is None:
            # Fast path: metrics only.  Two clock reads and one list
            # append per frame — the whole observability tax; the window
            # folds into histograms at watchdog cadence, not here.
            if observer.wall_clock:
                begin = perf_counter()
                responses = self._handle_frame(frame)
                observer.frame_handled(
                    self, (perf_counter() - begin) * 1e6
                )
            else:
                responses = self._handle_frame(frame)
                observer.frame_handled(self)
        else:
            begin = perf_counter() if observer.wall_clock else None
            with spans.span(
                f"handle:{frame.kind.name}",
                client=frame.client_id,
                seq=frame.seq,
                ctx_trace=(
                    frame.trace.trace_id if frame.trace is not None else None
                ),
                ctx_span=(
                    frame.trace.span_id if frame.trace is not None else None
                ),
            ):
                responses = self._handle_frame(frame)
            observer.frame_handled(
                self,
                None
                if begin is None
                else (perf_counter() - begin) * 1e6,
            )
        if frame.kind is FrameKind.FIN:
            # Forced end-of-stream evaluation: recovery must be observed
            # even when the tail is shorter than a watchdog window.
            observer.evaluate(self)
        return responses

    def _handle_frame(self, frame: Frame) -> list[Frame]:
        self.frames_handled += 1
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            telemetry.count(f"serve.frames.{frame.kind.name.lower()}")
        if frame.kind is FrameKind.HELLO:
            session = self.session(frame.client_id)
            if frame.payload and not session.meta:
                try:
                    meta = frame.json()
                except ValueError:
                    return [self._payload_error(frame, "HELLO")]
                if isinstance(meta, dict):
                    session.meta = meta
            return [session.reply(FrameKind.ACK, seq=frame.seq)]
        if frame.kind is FrameKind.EVENT:
            return self._handle_event(frame)
        if frame.kind is FrameKind.FIN:
            return self._handle_fin(frame)
        return [
            Frame(
                FrameKind.ERROR,
                frame.client_id,
                frame.seq,
                json_payload(
                    {"error": f"unexpected {frame.kind.name} frame from client"}
                ),
            )
        ]

    def _payload_error(self, frame: Frame, detail: str) -> Frame:
        """A payload that framed correctly but does not decode.

        The CRC proved the bytes arrived intact, so retransmission cannot
        help — this is a sender bug, surfaced as a counted and logged
        ``wire.decode_error`` plus an ERROR frame, never a silent drop
        (the bug class this PR audits out of the stack).
        """
        observer = self.observer
        if observer is not None:
            observer.count_decode_error()
            observer.log.event(
                "wire.decode_error",
                client=frame.client_id,
                seq=frame.seq,
                kind=frame.kind.name,
                detail=detail,
            )
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            telemetry.count("serve.wire_decode_errors")
        return self.session(frame.client_id).reply(
            FrameKind.ERROR,
            json_payload(
                {
                    "error": f"undecodable {frame.kind.name} payload: {detail}",
                    "seq": frame.seq,
                }
            ),
        )

    def _dispatch(self, session: _Session, seq: int, event: dict) -> Frame | None:
        """Dispatch one in-order event; returns an ERROR frame on failure.

        A structurally broken event record (missing tag, wrong field
        type) raises out of routing or the shard's record builder.  The
        frame is *consumed* — retransmitting identical bytes cannot fix
        a CRC-valid payload — and the failure surfaces as a decode
        error, not a wedged stream.
        """
        try:
            session.supervisor.dispatch(session.client_id, seq, event)
            return None
        except (KeyError, ValueError, TypeError) as exc:
            return self._payload_error(
                Frame(FrameKind.EVENT, session.client_id, seq),
                f"{type(exc).__name__}: {exc}",
            )

    def _handle_event(self, frame: Frame) -> list[Frame]:
        session = self.session(frame.client_id)
        if session.finished:
            return [
                session.reply(
                    FrameKind.ERROR,
                    json_payload({"error": "session already finished"}),
                )
            ]
        seq = frame.seq
        observer = self.observer
        if seq < session.next_seq:
            # Idempotent re-delivery of an *applied* frame: the client
            # lost our ACK (or the transport duplicated the frame).
            # Re-acknowledge with the cumulative watermark, drop the copy.
            session.dup_frames += 1
            if observer is not None:
                observer.count_redelivery()
            telemetry = _telemetry.ACTIVE
            if telemetry is not None:
                telemetry.count("serve.dup_frames")
            return [session.reply(FrameKind.ACK, seq=session.next_seq - 1)]
        if seq in session.reorder:
            # Duplicate of a *parked* frame.  Parked is not applied: an
            # ACK here would claim durability the gap denies, so renew
            # the NACK for the sequence number actually missing.
            session.dup_frames += 1
            session.nacks_sent += 1
            if observer is not None:
                observer.count_redelivery()
            return [session.reply(FrameKind.NACK, seq=session.next_seq)]
        try:
            event = frame.json()
        except ValueError as exc:
            return [self._payload_error(frame, f"not JSON: {exc}")]
        if not isinstance(event, dict):
            return [
                self._payload_error(
                    frame,
                    f"event payload is {type(event).__name__}, not an object",
                )
            ]
        if seq > session.next_seq:
            if len(session.reorder) >= self.config.queue_cap:
                # Backpressure: shed the parked frame (the client still
                # holds it) and mark the stream DEGRADED — latency is
                # sacrificed, findings are not.
                session.shed_frames += 1
                if observer is not None:
                    observer.count_redelivery()
                if not session.degraded:
                    session.degraded = True
                    session.ledger.mark_degraded(
                        f"reorder buffer overflow at seq {seq} "
                        f"(cap {self.config.queue_cap}): frame shed, "
                        "retransmission required"
                    )
                    if observer is not None:
                        observer.log.event(
                            "session.degraded",
                            client=session.client_id,
                            seq=seq,
                            queue_cap=self.config.queue_cap,
                        )
                telemetry = _telemetry.ACTIVE
                if telemetry is not None:
                    telemetry.count("serve.shed_frames")
            else:
                session.reorder[seq] = event
            session.nacks_sent += 1
            return [session.reply(FrameKind.NACK, seq=session.next_seq)]
        # In-order: apply, then drain everything the gap was blocking.
        errors: list[Frame] = []
        failure = self._dispatch(session, seq, event)
        if failure is not None:
            errors.append(failure)
        session.next_seq += 1
        while session.next_seq in session.reorder:
            parked = session.reorder.pop(session.next_seq)
            failure = self._dispatch(session, session.next_seq, parked)
            if failure is not None:
                errors.append(failure)
            session.next_seq += 1
        # Cumulative acknowledgement of everything applied so far.
        return errors + [session.reply(FrameKind.ACK, seq=session.next_seq - 1)]

    def _handle_fin(self, frame: Frame) -> list[Frame]:
        session = self.session(frame.client_id)
        if session.finished:
            return [session.reply(FrameKind.ACK, seq=frame.seq)]
        if frame.seq != session.next_seq or session.reorder:
            # The stream has holes: the client must retransmit before the
            # session can close — finishing now would drop findings.
            session.nacks_sent += 1
            return [session.reply(FrameKind.NACK, seq=session.next_seq)]
        session.finished = True
        supervisor = session.supervisor
        supervisor.drain()
        for shard, tool, finding, count in supervisor.findings():
            session.ledger.offer(tool, finding, count, shard=shard)
        responses = [session.reply(FrameKind.ACK, seq=frame.seq)]
        stream: list[tuple[int, Frame]] = []
        for entry in session.ledger.delivered:
            stream.append(
                (
                    entry["position"],
                    session.reply(FrameKind.FINDING, json_payload(entry)),
                )
            )
        for marker in session.ledger.markers:
            stream.append(
                (
                    marker["position"],
                    session.reply(FrameKind.DEGRADED, json_payload(marker)),
                )
            )
        responses += [f for _, f in sorted(stream, key=lambda x: x[0])]
        responses.append(
            session.reply(FrameKind.RESULT, json_payload(self._result(session)))
        )
        return responses

    def _result(self, session: _Session) -> dict:
        sup = session.supervisor.stats()
        return {
            "events": session.supervisor.events_delivered,
            "findings": len(session.ledger.delivered),
            "suppressed_duplicates": session.ledger.suppressed_duplicates,
            "degraded": session.degraded,
            "degraded_markers": len(session.ledger.markers),
            "dup_frames": session.dup_frames,
            "shed_frames": session.shed_frames,
            "nacks_sent": session.nacks_sent,
            "worker_restarts": sup["worker_restarts"],
            "duplicate_deliveries_dropped": sup["duplicates_dropped"],
            "shards": len(session.supervisor.workers),
        }

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> dict:
        """Graceful drain (the SIGTERM path): flush every parked batch.

        Findings already computed stay available; unfinished sessions get
        their columnar batches flushed so no parked access is lost, and
        the per-session stats are returned for the shutdown log line.
        """
        for session in self.sessions.values():
            if not session.finished:
                session.supervisor.drain()
        self.drained = True
        return {
            "sessions": len(self.sessions),
            "unfinished": sum(
                1 for s in self.sessions.values() if not s.finished
            ),
        }

    def connection(self) -> "ServerConnection":
        """A byte-level connection adapter (one per transport connection)."""
        return ServerConnection(self)


class ServerConnection:
    """Byte-stream adapter: decoder in, encoded response frames out.

    The same TCP port the binary wire protocol uses also answers plain
    HTTP GET/HEAD for the observability endpoints (``/metrics``,
    ``/healthz``, ``/readyz``).  The first byte of a connection decides
    its mode: every wire frame opens with magic ``0xF7``, which can never
    collide with the ASCII ``G``/``H`` of an HTTP request line, so
    sniffing is unambiguous.  HTTP connections get one response and are
    closed (``Connection: close``); wire connections behave exactly as
    before.
    """

    def __init__(self, server: AnalysisServer):
        self.server = server
        self.decoder = FrameDecoder()
        self._errors_reported = 0
        #: ``None`` until the first byte arrives, then ``"wire"``/``"http"``.
        self.mode: str | None = None
        self._http_buffer = bytearray()
        #: Set once an HTTP response is emitted: the front end should
        #: close the connection after flushing it.
        self.close_requested = False

    def handle_bytes(self, data: bytes) -> bytes:
        """Feed raw transport bytes; returns the encoded responses."""
        from ..events.wire import encode_frame

        if self.mode is None and data:
            self.mode = "http" if data[:1] in (b"G", b"H") else "wire"
        if self.mode == "http":
            return self._handle_http(data)
        out = bytearray()
        for frame in self.decoder.feed(data):
            for response in self.server.handle_frame(frame):
                out.extend(encode_frame(response))
        self._surface_decoder_errors()
        return bytes(out)

    def _surface_decoder_errors(self) -> None:
        """Count and log decoder rejections the moment they happen.

        The decoder has always *recorded* damage in its error list, but
        nothing drained that list until EOF — transport corruption was
        effectively swallowed for the lifetime of the connection.  Every
        new error now becomes a counted, logged ``wire.decode_error``.
        """
        errors = self.decoder.errors
        if len(errors) == self._errors_reported:
            return
        observer = self.server.observer
        for error in errors[self._errors_reported:]:
            if observer is not None:
                observer.count_decode_error()
                observer.log.event(
                    "wire.decode_error",
                    offset=error.offset,
                    detail=error.reason,
                )
            telemetry = _telemetry.ACTIVE
            if telemetry is not None:
                telemetry.count("serve.wire_decode_errors")
        self._errors_reported = len(errors)

    # -- HTTP observability endpoints --------------------------------------

    def _handle_http(self, data: bytes) -> bytes:
        self._http_buffer.extend(data)
        if b"\r\n\r\n" not in self._http_buffer and b"\n\n" not in self._http_buffer:
            if len(self._http_buffer) > 16384:
                self.close_requested = True
                return self._http_response(400, "text/plain", b"request too large\n")
            return b""  # headers incomplete; wait for more bytes
        request_line = bytes(self._http_buffer).split(b"\r\n", 1)[0].split(b"\n", 1)[0]
        parts = request_line.decode("latin-1").split()
        self.close_requested = True
        if len(parts) < 2 or parts[0] not in ("GET", "HEAD"):
            return self._http_response(400, "text/plain", b"bad request\n")
        method, path = parts[0], parts[1].split("?", 1)[0]
        observer = self.server.observer
        if observer is not None:
            observer.log.event("http.request", method=method, path=path)
        status, ctype, body = self._route(path)
        return self._http_response(status, ctype, body, head=(method == "HEAD"))

    def _route(self, path: str) -> tuple[int, str, bytes]:
        import json as _json

        from ..observe.health import healthz, readyz
        from ..observe.metrics import render_prometheus, service_snapshot

        server = self.server
        if path == "/metrics":
            text = render_prometheus(
                service_snapshot(server, server.observer)
            )
            return 200, "text/plain; version=0.0.4; charset=utf-8", text.encode("utf-8")
        if path == "/healthz":
            document = healthz(server, server.observer)
            status = 200 if document["status"] == "ok" else 503
            body = _json.dumps(document, sort_keys=True).encode("utf-8") + b"\n"
            return status, "application/json", body
        if path == "/readyz":
            document = readyz(server)
            status = 200 if document["ready"] else 503
            body = _json.dumps(document, sort_keys=True).encode("utf-8") + b"\n"
            return status, "application/json", body
        if path in ("/profile", "/profile.json"):
            profiler = (
                server.observer.profiler if server.observer is not None else None
            )
            if profiler is None:
                return 404, "application/json", b'{"error":"profiling disabled"}\n'
            if path == "/profile":
                # Folded-stack text: feed it straight to a flamegraph tool.
                return (
                    200,
                    "text/plain; charset=utf-8",
                    profiler.folded().encode("utf-8"),
                )
            # JSON form: stats plus hot stacks with their (client, seq)
            # wire-frame links, the join key into the stitched span trace.
            body = _json.dumps(profiler.snapshot(), sort_keys=True).encode("utf-8")
            return 200, "application/json", body + b"\n"
        return 404, "application/json", b'{"error":"unknown path"}\n'

    @staticmethod
    def _http_response(
        status: int, ctype: str, body: bytes, *, head: bool = False
    ) -> bytes:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found", 503: "Service Unavailable"}
        head_lines = (
            f"HTTP/1.0 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        return head_lines if head else head_lines + body

    def eof(self) -> list:
        """End of stream: reject (never pad) any truncated trailing frame."""
        errors = self.decoder.eof()
        self._surface_decoder_errors()
        return errors
