"""Per-shard checkpoint/replay journals: the crash-recovery source of truth.

A shard worker journals every frame *before* applying it and only then
acknowledges.  The journal therefore dominates the worker's in-memory
detector state at all times: when the supervisor restarts a crashed
worker, replaying the journal in append order reconstructs exactly the
state the shard had acknowledged — the write-ahead-log discipline, scaled
down to one process.

Idempotent re-delivery rides on the same structure: entries are keyed by
``(client, seq)``, so a frame delivered twice (client retry after a lost
ACK, supervisor redelivery after a post-journal crash) is recognized and
dropped without touching detector state.  One event frame can legitimately
reach *two* shards (a memcpy whose source and destination live on
different shards), which is why dedup is per-journal, not global.

The journal can optionally mirror itself to a JSON-lines sink (one entry
per line) so a supervisor restart — not just a worker restart — can
rebuild shard state from disk; :meth:`ShardJournal.load` is the inverse.
"""

from __future__ import annotations

import json
from typing import IO, Iterator

__all__ = ["ShardJournal"]


class ShardJournal:
    """Append-only, ``(client, seq)``-deduped event journal for one shard."""

    def __init__(self, shard_id: int = 0, *, sink: IO[str] | None = None):
        self.shard_id = shard_id
        self._entries: list[tuple[int, int, dict]] = []
        self._seen: set[tuple[int, int]] = set()
        #: Highest acknowledged sequence number per client (-1 = none).
        self._acked: dict[int, int] = {}
        self._sink = sink
        self.duplicates_dropped = 0
        #: Lines a :meth:`load` rejected as malformed (counted, skipped —
        #: a half-written mirror line must not poison the whole journal).
        self.load_errors = 0

    def __len__(self) -> int:
        return len(self._entries)

    def seen(self, client: int, seq: int) -> bool:
        return (client, seq) in self._seen

    def record(self, client: int, seq: int, event_json: dict) -> bool:
        """Journal one frame; returns ``False`` for an idempotent duplicate."""
        key = (client, seq)
        if key in self._seen:
            self.duplicates_dropped += 1
            return False
        self._seen.add(key)
        self._entries.append((client, seq, event_json))
        if self._sink is not None:
            self._sink.write(
                json.dumps(
                    {"c": client, "s": seq, "e": event_json},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
        return True

    def mark_acked(self, client: int, seq: int) -> None:
        """Advance the acknowledgement watermark for ``client``."""
        if seq > self._acked.get(client, -1):
            self._acked[client] = seq

    def acked_seq(self, client: int) -> int:
        """Highest acknowledged sequence number for ``client`` (-1 if none)."""
        return self._acked.get(client, -1)

    def replay(self) -> Iterator[tuple[int, int, dict]]:
        """Every journaled entry in append order."""
        return iter(tuple(self._entries))

    @property
    def writable(self) -> bool:
        """Whether journaling can still accept entries (readiness check).

        An in-memory journal is always writable; a mirrored one is
        writable while its sink is open.  A closed sink means journal
        durability is gone — the server must stop advertising readiness
        rather than acknowledge frames it can no longer make durable.
        """
        sink = self._sink
        return sink is None or not getattr(sink, "closed", False)

    @classmethod
    def load(cls, shard_id: int, source: IO[str]) -> "ShardJournal":
        """Rebuild a journal from its JSON-lines mirror.

        A malformed line (truncated JSON from a crash mid-write, or a
        record missing its fields) is **counted and skipped**, never
        silently absorbed and never fatal: the journal that loads is the
        longest well-formed prefix semantics allow, and
        :attr:`load_errors` reports exactly how much was lost.
        """
        journal = cls(shard_id)
        for line in source:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                journal.record(entry["c"], entry["s"], entry["e"])
            except (ValueError, KeyError, TypeError):
                journal.load_errors += 1
        return journal

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "duplicates_dropped": self.duplicates_dropped,
            "clients": len(self._acked),
            "load_errors": self.load_errors,
        }
