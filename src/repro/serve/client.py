"""The reference serve client: windowed streaming with retry and backoff.

The client side of the delivery guarantee.  Every event frame carries a
sequence number; the client holds a frame until a *cumulative* ACK covers
it, and retransmits unacknowledged frames — on a NACK (the server names
the next sequence number it expects) or after a timeout, with capped
exponential backoff and deterministic jitter.  Backoff is simulated in
ticks (like every other latency in this codebase) so tests and chaos
campaigns stay byte-reproducible; the jitter derivation mirrors
:meth:`repro.faults.plan.FaultPlan.generate` — a :class:`random.Random`
seeded from stable material, never global randomness.

Because retransmission is the client's duty and dedup is the server's,
the pair is safe under every transport fault the chaos campaign injects:
a dropped frame is retransmitted, a duplicated frame is re-ACKed and
dropped, a reordered frame parks in the server's reorder buffer (or is
shed and retransmitted under backpressure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..events.trace_io import event_to_json
from ..events.wire import Frame, FrameDecoder, FrameKind, TraceContext, json_payload

__all__ = ["ServeClient", "SessionResult", "RetryPolicy", "DeliveryError"]


class DeliveryError(RuntimeError):
    """The retry budget ran out with frames still unacknowledged."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic (seeded) jitter."""

    seed: int = 0
    base_ticks: int = 1
    cap_ticks: int = 64
    max_attempts: int = 12

    def delay(self, attempt: int) -> int:
        """Backoff ticks before retry ``attempt`` (1-based), with jitter."""
        ceiling = min(self.cap_ticks, self.base_ticks << min(attempt, 16))
        # Full jitter over [1, ceiling], seeded per (policy, attempt) so a
        # replayed session backs off identically tick for tick.
        rng = random.Random(f"{self.seed}/backoff/{attempt}")
        return 1 + rng.randrange(ceiling)


@dataclass
class SessionResult:
    """What one streamed session produced, client-side."""

    client_id: int
    events: int
    findings: list[dict] = field(default_factory=list)
    markers: list[dict] = field(default_factory=list)
    result: dict = field(default_factory=dict)
    frames_sent: int = 0
    retransmits: int = 0
    backoff_ticks: int = 0
    nacks_seen: int = 0

    def fingerprints(self) -> tuple[tuple[str, str], ...]:
        """Delivered ``(tool, fingerprint)`` pairs, sorted."""
        return tuple(
            sorted((f["tool"], f["fingerprint"]) for f in self.findings)
        )


class ServeClient:
    """Stream events to an :class:`AnalysisServer` over any transport.

    ``transport`` is anything with ``send(data: bytes) -> bytes`` — the
    loopback pipe, a socket wrapper, a stdio pipe.  The client is
    synchronous: each send may return zero or more response frames
    (transports under fault injection return fewer).
    """

    def __init__(
        self,
        transport,
        client_id: int = 1,
        policy: RetryPolicy | None = None,
        *,
        spanlog=None,
    ):
        self.transport = transport
        self.client_id = client_id
        self.policy = policy or RetryPolicy(seed=client_id)
        self.decoder = FrameDecoder()
        #: Optional :class:`~repro.observe.spans.SpanLog` modelling this
        #: client as one process of the distributed trace.  When present,
        #: every frame send becomes a span *and* the span's identity is
        #: propagated in the frame's wire trace context (version-2
        #: frames) so the server can tie its spans back to ours.
        self.spanlog = spanlog

    # -- low-level ---------------------------------------------------------

    def _exchange(self, frame: Frame, result: SessionResult) -> list[Frame]:
        from ..events.wire import encode_frame

        spanlog = self.spanlog
        if spanlog is None:
            result.frames_sent += 1
            raw = self.transport.send(encode_frame(frame))
            return self.decoder.feed(raw) if raw else []
        with spanlog.span(
            f"frame:{frame.kind.name}",
            client=self.client_id,
            seq=frame.seq,
        ) as span:
            traced = replace(
                frame, trace=TraceContext(self.client_id, span.begin)
            )
            result.frames_sent += 1
            raw = self.transport.send(encode_frame(traced))
            frames = self.decoder.feed(raw) if raw else []
            span.tags["responses"] = len(frames)
        return frames

    # -- session -----------------------------------------------------------

    def stream(self, events, *, meta: dict | None = None) -> SessionResult:
        """Run one full session: HELLO, EVENT stream, FIN, finding stream."""
        payloads = [event_to_json(e) if not isinstance(e, dict) else e for e in events]
        result = SessionResult(client_id=self.client_id, events=len(payloads))
        acked_through = -1
        hello_acked = False

        def absorb(frames: list[Frame]) -> list[Frame]:
            """Fold ACK/NACK progress into the watermark; pass the rest on."""
            nonlocal acked_through, hello_acked
            passed: list[Frame] = []
            for f in frames:
                if f.kind is FrameKind.ACK:
                    hello_acked = True
                    acked_through = max(acked_through, f.seq)
                elif f.kind is FrameKind.NACK:
                    result.nacks_seen += 1
                else:
                    passed.append(f)
            return passed

        # HELLO until acknowledged.
        hello = Frame(
            FrameKind.HELLO,
            self.client_id,
            0,
            json_payload(meta or {}),
        )
        for attempt in range(self.policy.max_attempts + 1):
            absorb(self._exchange(hello, result))
            if hello_acked:
                break
            result.retransmits += 1
            result.backoff_ticks += self.policy.delay(attempt + 1)
        else:  # pragma: no cover - requires a dead transport
            raise DeliveryError("HELLO was never acknowledged")
        acked_through = -1  # the HELLO ACK does not cover any event

        # First pass: stream every event once.
        for seq, payload in enumerate(payloads):
            absorb(
                self._exchange(
                    Frame(FrameKind.EVENT, self.client_id, seq, json_payload(payload)),
                    result,
                )
            )

        # Repair passes: retransmit past the watermark until all acked.
        attempt = 0
        while acked_through < len(payloads) - 1:
            attempt += 1
            if attempt > self.policy.max_attempts:
                raise DeliveryError(
                    f"gave up after {self.policy.max_attempts} repair "
                    f"passes with seq {acked_through + 1} still "
                    "unacknowledged"
                )
            result.backoff_ticks += self.policy.delay(attempt)
            before = acked_through
            for seq in range(acked_through + 1, len(payloads)):
                result.retransmits += 1
                absorb(
                    self._exchange(
                        Frame(
                            FrameKind.EVENT,
                            self.client_id,
                            seq,
                            json_payload(payloads[seq]),
                        ),
                        result,
                    )
                )
            if acked_through > before:
                attempt = 0  # forward progress resets the budget

        # FIN until the finding stream arrives.
        fin = Frame(FrameKind.FIN, self.client_id, len(payloads))
        for attempt in range(self.policy.max_attempts + 1):
            tail = absorb(self._exchange(fin, result))
            for f in tail:
                if f.kind is FrameKind.FINDING:
                    result.findings.append(f.json())
                elif f.kind is FrameKind.DEGRADED:
                    result.markers.append(f.json())
                elif f.kind is FrameKind.RESULT:
                    result.result = f.json()
            if result.result:
                return result
            result.retransmits += 1
            result.backoff_ticks += self.policy.delay(attempt + 1)
        raise DeliveryError("FIN was never answered with a RESULT frame")
