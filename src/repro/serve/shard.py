"""One shard worker: a full detector stack over a slice of address space.

A :class:`ShardWorker` owns a fresh :class:`~repro.events.bus.ToolBus`
(columnar by default — the batched numpy engine is the whole reason
sharded batch feeding is fast) with its own tool instances.  It consumes
journaled event frames, applies them to the bus, and exposes its tools'
findings.

Crash semantics are explicit, because the chaos campaign injects them at
every possible point: :exc:`WorkerCrash` models the worker process dying
mid-delivery.  ``crash_phase="pre"`` dies before the frame reaches the
journal (the frame is lost with the worker and must be redelivered);
``crash_phase="post"`` dies after journal+apply but before the ACK (the
supervisor redelivers, and the journal's ``(client, seq)`` dedup makes the
redelivery a no-op).  Both interleavings must — and do — converge to the
same detector state after :meth:`restart` replays the journal.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.detector import Arbalest
from ..events.bus import ToolBus
from ..events.records import (
    Access,
    AllocationEvent,
    DataOp,
    DataOpKind,
    FlushEvent,
    KernelEvent,
    MemcpyEvent,
    SyncEvent,
)
from ..events.trace_io import event_from_json
from ..forensics.recorder import FlightRecorder, scope as _forensics_scope
from ..observe import prof as _prof
from ..telemetry import registry as _telemetry
from ..tools.archer import ArcherTool
from ..tools.asan import AsanTool
from ..tools.base import Tool
from ..tools.findings import Finding
from ..tools.msan import MsanTool
from ..tools.valgrind import ValgrindTool
from .journal import ShardJournal

__all__ = [
    "ShardWorker",
    "WorkerCrash",
    "DEFAULT_TOOLS",
    "register_forensic_ranges",
]

#: Tool factories the server can host, mirroring the harness's Table III
#: set but defined here (from the tool modules directly) so the serve
#: package never imports the harness.
DEFAULT_TOOLS: dict[str, Callable[[], Tool]] = {
    "arbalest": Arbalest,
    "valgrind": ValgrindTool,
    "archer": ArcherTool,
    "asan": AsanTool,
    "msan": MsanTool,
}


class WorkerCrash(RuntimeError):
    """A shard worker died mid-delivery (injected or real)."""


def register_forensic_ranges(recorder: FlightRecorder, event) -> None:
    """Rebuild the live runtime's address index from a streamed trace.

    Findings name their variable through the flight recorder's address
    index, and the live runtime populates that index out of band (at
    ``HostArray`` creation and present-table insertion) — calls a trace
    replay never sees.  This mirrors each registration from the events
    that *are* in the trace, so served findings fingerprint identically
    to in-process ones:

    * a host (device 0) allocation carries the array name as its label —
      register it verbatim;
    * a device CV is named after its OV, **not** after its allocation
      label (device allocs are labelled ``name(CV)`` / ``name(image)``),
      so CV ranges register at the ``ALLOC`` data op by resolving the OV
      address against the already-registered host range;
    * frees and ``DELETE`` data ops retire ranges, keeping allocator
      reuse from mis-attributing and letting use-after-unmap findings
      still name the departed variable.
    """
    if type(event) is AllocationEvent:
        if event.is_free:
            recorder.release_range(event.device_id, event.address)
        elif event.device_id == 0 and event.label:
            recorder.register_range(0, event.address, event.nbytes, event.label)
    elif type(event) is DataOp:
        if event.kind is DataOpKind.ALLOC:
            name = recorder.resolve(0, event.ov_address)
            if name:
                recorder.register_range(
                    event.device_id, event.cv_address, event.nbytes, name
                )
        elif event.kind is DataOpKind.DELETE:
            recorder.release_range(event.device_id, event.cv_address)


class ShardWorker:
    """One shard of detector state, restartable from its journal."""

    def __init__(
        self,
        shard_id: int,
        *,
        engine: str = "columnar",
        tools: Iterable[str] = ("arbalest",),
        journal: ShardJournal | None = None,
        recorder: FlightRecorder | None = None,
        observer=None,
    ):
        self.shard_id = shard_id
        self.engine = engine
        #: Optional :class:`~repro.observe.observer.ServeObserver`; when
        #: present, applies and replays are counted/spanned through it.
        self._observer = observer
        #: The per-shard span log, resolved once — ``SpanLog`` identity is
        #: stable across restarts, so ``deliver`` never re-asks for it.
        self._spanlog = (
            observer.shard_span_log(shard_id) if observer is not None else None
        )
        #: The observer's continuous profiler, resolved once.  Activated
        #: around each apply so ToolBus sampling attributes dispatch cost
        #: to this shard's phase and the frame being applied.
        self._profiler = (
            getattr(observer, "profiler", None) if observer is not None else None
        )
        self._prof_phase = f"shard-{shard_id}"
        #: A session-level recorder shared with sibling shards (the
        #: supervisor passes one), or ``None`` for a private per-worker
        #: one.  Sharing matters for attribution: an overrun access can
        #: fault inside a range whose events route to a *different*
        #: shard, and only a shared address index can still name it.
        self._shared_recorder = recorder
        self.tool_names = tuple(tools)
        unknown = [t for t in self.tool_names if t not in DEFAULT_TOOLS]
        if unknown:
            raise ValueError(
                f"unknown tool(s) {', '.join(unknown)} "
                f"(valid choices: {', '.join(sorted(DEFAULT_TOOLS))})"
            )
        self.journal = journal if journal is not None else ShardJournal(shard_id)
        self.alive = False
        self.restarts = 0
        self.replayed_events = 0
        self.replay_errors = 0
        self.applied = 0
        self._boot()

    # -- lifecycle ---------------------------------------------------------

    def _boot(self) -> None:
        """Build a fresh bus + tool stack (initial boot and every restart)."""
        self.bus = ToolBus(engine=self.engine)
        # Variable attribution must match the in-process golden path.  A
        # shared (supervisor-owned) recorder survives worker crashes —
        # journal replay's re-registrations are idempotent in effect
        # (same ranges, same names, most-recent-wins resolution); a
        # private recorder is rebuilt from the journal like everything
        # else.
        self.recorder = (
            self._shared_recorder
            if self._shared_recorder is not None
            else FlightRecorder()
        )
        self.tools: dict[str, Tool] = {}
        for name in self.tool_names:
            tool = DEFAULT_TOOLS[name]()
            self.bus.attach(tool)
            self.tools[name] = tool
        self._dispatch = {
            Access: self.bus.publish_access,
            DataOp: self.bus.publish_data_op,
            MemcpyEvent: self.bus.publish_memcpy,
            KernelEvent: self.bus.publish_kernel,
            AllocationEvent: self.bus.publish_allocation,
            SyncEvent: self.bus.publish_sync,
            FlushEvent: self.bus.publish_flush,
        }
        self.alive = True

    def crash(self) -> None:
        """Model the worker process dying; detector state is gone."""
        self.alive = False

    def restart(self) -> None:
        """Supervisor-driven restart: fresh stack, replay the journal.

        The journal holds exactly the acknowledged (and possibly some
        journaled-but-unacked) frames in append order; replaying them
        rebuilds the detector state those acknowledgements promised.
        """
        self.restarts += 1
        replayed = 0
        self._boot()
        observer = self._observer
        spanlog = self._spanlog
        for client, seq, event_json in self.journal.replay():
            try:
                if spanlog is not None:
                    # The replay span links back to the original apply via
                    # ``replayed_from`` — the stitched trace shows the
                    # re-execution as a distinct span tied to the frame
                    # identity it re-ran.
                    with spanlog.span(
                        "replay",
                        client=client,
                        seq=seq,
                        shard=self.shard_id,
                        restart=self.restarts,
                        replayed_from=f"{client}:{seq}",
                    ):
                        self._apply(event_json, (client, seq))
                else:
                    self._apply(event_json, (client, seq))
            except (KeyError, ValueError, TypeError) as exc:
                # A journal entry that no longer decodes (bit rot in a
                # mirror, a version skew) must not take the whole shard
                # down with it — count it, log it, skip it.  Silently
                # swallowing it is the bug class this PR audits out.
                self.replay_errors += 1
                if observer is not None:
                    observer.count_replay_error()
                    observer.log.event(
                        "journal.replay_error",
                        client=client,
                        seq=seq,
                        shard=self.shard_id,
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                telemetry = _telemetry.ACTIVE
                if telemetry is not None:
                    telemetry.count("serve.journal_replay_errors")
                continue
            replayed += 1
        self.replayed_events += replayed
        telemetry = _telemetry.ACTIVE
        if telemetry is not None:
            telemetry.count("serve.worker_restarts")
            telemetry.count("serve.replayed_events", replayed)

    # -- delivery ----------------------------------------------------------

    def _apply(self, event_json: dict, frame: tuple | None = None) -> None:
        event = event_from_json(event_json)
        register_forensic_ranges(self.recorder, event)
        profiler = self._profiler
        if profiler is None:
            with _forensics_scope(self.recorder):
                self._dispatch[type(event)](event)
            self.applied += 1
            return
        # Manual activate/restore (not the scope() contextmanager): this
        # runs once per event frame, and a generator frame per event would
        # be the kind of observability tax the governor exists to prevent.
        profiler.set_context(phase=self._prof_phase)
        if frame is not None:
            profiler.set_frame(frame[0], frame[1])
        previous = _prof.ACTIVE
        _prof.ACTIVE = profiler
        try:
            with _forensics_scope(self.recorder):
                self._dispatch[type(event)](event)
        finally:
            _prof.ACTIVE = previous
            profiler.clear_frame()
        self.applied += 1

    def deliver(
        self,
        client: int,
        seq: int,
        event_json: dict,
        *,
        crash_phase: str | None = None,
    ) -> bool:
        """Journal + apply one frame; returns ``False`` for a duplicate.

        ``crash_phase`` is the chaos hook: ``"pre"`` crashes before the
        journal sees the frame, ``"post"`` after journal+apply but before
        the acknowledgement — the two interleavings a real worker death
        can produce.
        """
        if not self.alive:
            raise WorkerCrash(f"shard {self.shard_id} is down")
        if crash_phase == "pre":
            self.crash()
            raise WorkerCrash(
                f"shard {self.shard_id} killed before journaling seq {seq}"
            )
        if not self.journal.record(client, seq, event_json):
            return False  # idempotent re-delivery
        spanlog = self._spanlog
        if spanlog is not None:
            with spanlog.span(
                "apply", client=client, seq=seq, shard=self.shard_id
            ):
                self._apply(event_json, (client, seq))
        else:
            self._apply(event_json, (client, seq))
        if crash_phase == "post":
            self.crash()
            raise WorkerCrash(
                f"shard {self.shard_id} killed after journaling seq {seq}, "
                "before acknowledging it"
            )
        self.journal.mark_acked(client, seq)
        return True

    def drain(self) -> None:
        """Flush any parked columnar batch (graceful-drain path)."""
        profiler = self._profiler
        if profiler is not None:
            profiler.set_context(phase=self._prof_phase)
            previous = _prof.ACTIVE
            _prof.ACTIVE = profiler
            try:
                with _forensics_scope(self.recorder):
                    self.bus.flush_batch()
            finally:
                _prof.ACTIVE = previous
            return
        with _forensics_scope(self.recorder):
            self.bus.flush_batch()

    # -- results -----------------------------------------------------------

    def findings(self) -> list[tuple[str, Finding, int]]:
        """Every tool finding with its per-site count, in tool order."""
        self.drain()
        out: list[tuple[str, Finding, int]] = []
        for name in self.tool_names:
            for finding, count in self.tools[name].findings_with_counts():
                out.append((name, finding, count))
        return out

    def stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "alive": self.alive,
            "restarts": self.restarts,
            "replayed_events": self.replayed_events,
            "replay_errors": self.replay_errors,
            "applied": self.applied,
            "journal": self.journal.stats(),
        }
