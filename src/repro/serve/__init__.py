"""Detection-as-a-service: the crash-resilient sharded streaming server.

``repro serve`` turns the in-process detector stack into a long-lived
analysis service.  Clients stream length-prefixed, sequence-numbered event
frames (:mod:`repro.events.wire`); the server shards detector state by
address range across worker shards, feeds each shard's events through the
existing columnar :class:`~repro.events.bus.ToolBus` engine in batches,
and streams back fingerprint-keyed findings.

The delivery guarantee — the whole point of the subsystem — is:

    Under worker crashes, duplicated frames, reordered frames, and dropped
    frames, the finding set delivered for a session is byte-identical (by
    fingerprint) to an in-process run of the same event stream: **zero
    dropped findings, zero duplicated findings.**

The mechanisms, each its own module:

* :mod:`.journal` — per-shard append-only journals with ``(client, seq)``
  dedup; the source of truth a restarted worker replays from.
* :mod:`.shard` — one shard worker: a fresh tool stack over a columnar
  bus, crash/restart with journal replay, idempotent re-delivery.
* :mod:`.router` — address-range sharding that keeps every mapping pair
  (original variable, corresponding variable) on one shard.
* :mod:`.supervisor` — routes events to shards, restarts crashed workers,
  redelivers unacknowledged frames.
* :mod:`.server` — the protocol engine: per-client sessions, reorder
  buffers with bounded backpressure (shedding degrades to a ``DEGRADED``
  marker, never a dropped finding), graceful drain.
* :mod:`.client` — the reference client: retry/timeout with jittered,
  capped exponential backoff.
* :mod:`.net` — socket and stdio front ends with SIGTERM graceful drain.

Live observability — cross-process trace propagation, ``/metrics`` and
``/healthz``/``/readyz`` over the same TCP port, the SLO watchdog, and
structured JSONL logging — plugs in via :mod:`repro.observe`: construct a
:class:`~repro.observe.observer.ServeObserver` and hand it to
:class:`AnalysisServer` (or the front ends).  Without one, the serve hot
path is observability-free by construction.
"""

from .client import DeliveryError, RetryPolicy, ServeClient, SessionResult
from .journal import ShardJournal
from .net import serve_connection, serve_socket, serve_stdio
from .router import AddressRouter
from .server import AnalysisServer, ServerConfig
from .shard import (
    DEFAULT_TOOLS,
    ShardWorker,
    WorkerCrash,
    register_forensic_ranges,
)
from .supervisor import Supervisor
from .transport import LoopbackTransport

__all__ = [
    "AnalysisServer",
    "ServerConfig",
    "Supervisor",
    "ShardWorker",
    "WorkerCrash",
    "ShardJournal",
    "AddressRouter",
    "ServeClient",
    "SessionResult",
    "RetryPolicy",
    "DeliveryError",
    "LoopbackTransport",
    "DEFAULT_TOOLS",
    "serve_socket",
    "serve_stdio",
    "serve_connection",
    "register_forensic_ranges",
]
