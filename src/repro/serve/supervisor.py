"""The shard supervisor: routing, worker restarts, redelivery.

The supervisor is the component that turns "a worker crashed" from an
outage into a non-event.  It owns the shard workers, routes every inbound
event frame to the shard(s) whose address ranges it touches (kernel and
sync events broadcast — they carry the epoch structure every shard's race
checker needs), and wraps each delivery in the restart protocol:

* a :exc:`~repro.serve.shard.WorkerCrash` during delivery triggers an
  immediate restart of that worker — fresh tool stack, journal replay up
  to the last acknowledged frame — followed by redelivery of the frame
  that was in flight;
* redelivery is idempotent by construction (journal dedup on
  ``(client, seq)``), so it does not matter whether the crash happened
  before or after the frame reached the journal;
* a worker that keeps dying on one frame exhausts
  :data:`MAX_DELIVERY_RETRIES` and surfaces a hard error — the supervisor
  never spins forever and never silently skips a frame.
"""

from __future__ import annotations

from typing import Iterable

from ..forensics.recorder import FlightRecorder
from ..telemetry import registry as _telemetry
from ..tools.findings import Finding
from .router import AddressRouter
from .shard import ShardWorker, WorkerCrash

__all__ = ["Supervisor", "MAX_DELIVERY_RETRIES"]

#: Restart-and-redeliver attempts per (frame, shard) before giving up.
MAX_DELIVERY_RETRIES = 4


class Supervisor:
    """Routes frames to shard workers and keeps the workers alive."""

    def __init__(
        self,
        *,
        n_shards: int = 4,
        engine: str = "columnar",
        tools: Iterable[str] = ("arbalest",),
        observer=None,
    ):
        self.router = AddressRouter(n_shards)
        #: Optional :class:`~repro.observe.observer.ServeObserver` shared
        #: with the owning server; ``None`` keeps every site below free.
        self.observer = observer
        #: The session's address-to-variable index, shared by all shard
        #: workers.  It is supervisor state, not worker state: a worker
        #: crash wipes detector state (rebuilt from the journal) but not
        #: attribution, and a finding on one shard can name a variable
        #: whose mapping events routed to another (overrun attribution
        #: crosses shard boundaries).
        self.recorder = FlightRecorder()
        self.workers = [
            ShardWorker(
                i,
                engine=engine,
                tools=tools,
                recorder=self.recorder,
                observer=observer,
            )
            for i in range(n_shards)
        ]
        #: Delivery-attempt occurrence index -> crash phase ("pre"/"post"),
        #: installed by the chaos harness.  Consulted once per (frame,
        #: shard) delivery attempt, in deterministic order.
        self.kill_schedule: dict[int, str] = {}
        self.delivery_attempts = 0
        self.duplicates_dropped = 0
        self.worker_restarts = 0
        self.events_delivered = 0

    # -- routing -----------------------------------------------------------

    def shards_for(self, event_json: dict) -> tuple[int, ...]:
        """The shard ids an event must reach, in ascending order."""
        tag = event_json["t"]
        router = self.router
        if tag == "access":
            return (router.route(event_json["addr"]),)
        if tag == "alloc":
            # Allocations broadcast: they are rare, every shard's extent
            # map needs them, and broadcasting is what makes the router's
            # CV rebind (see AddressRouter.bind) safe — the new owner of
            # a rebound range has already seen its allocation.
            if not event_json["free"]:
                router.claim(event_json["addr"], event_json["n"])
            return tuple(range(len(self.workers)))
        if tag == "data_op":
            pair = router.bind(
                event_json["ov"], event_json["cv"], event_json["n"]
            )
            return tuple(sorted(set(pair)))
        if tag == "memcpy":
            return tuple(
                sorted(
                    {
                        router.route(event_json["dst"]),
                        router.route(event_json["src"]),
                    }
                )
            )
        if tag == "flush":
            if event_json["addr"]:
                return (router.route(event_json["addr"]),)
            return tuple(range(len(self.workers)))
        # kernel / sync: epoch structure, every shard's race checker needs it
        return tuple(range(len(self.workers)))

    # -- delivery ----------------------------------------------------------

    def _restart(self, worker, *, client: int | None = None, seq: int | None = None, cause: str = "crash") -> None:
        """Restart one worker, with the structured log entry operators grep."""
        observer = self.observer
        if observer is not None:
            observer.log.event(
                "worker.restart",
                client=client,
                seq=seq,
                shard=worker.shard_id,
                cause=cause,
                journal_entries=len(worker.journal),
            )
        worker.restart()
        self.worker_restarts += 1

    def _deliver_to(self, shard_id: int, client: int, seq: int, event: dict) -> None:
        """Deliver one frame to one shard, surviving worker crashes."""
        worker = self.workers[shard_id]
        observer = self.observer
        for _attempt in range(MAX_DELIVERY_RETRIES + 1):
            self.delivery_attempts += 1
            crash_phase = self.kill_schedule.pop(self.delivery_attempts, None)
            try:
                if not worker.alive:
                    # Died outside a delivery (e.g. drained mid-crash):
                    # restart before touching it.
                    self._restart(
                        worker, client=client, seq=seq, cause="found-dead"
                    )
                fresh = worker.deliver(
                    client, seq, event, crash_phase=crash_phase
                )
                if not fresh:
                    self.duplicates_dropped += 1
                return
            except WorkerCrash:
                self._restart(worker, client=client, seq=seq, cause="crash")
                if observer is not None:
                    observer.count_redelivery()
                telemetry = _telemetry.ACTIVE
                if telemetry is not None:
                    telemetry.count("serve.crash_redeliveries")
                continue  # redeliver the in-flight frame
        raise RuntimeError(  # pragma: no cover - requires a poisoned frame
            f"shard {shard_id} failed {MAX_DELIVERY_RETRIES + 1} delivery "
            f"attempts for (client={client}, seq={seq})"
        )

    def dispatch(self, client: int, seq: int, event_json: dict) -> None:
        """Route one in-order frame to every shard it concerns."""
        for shard_id in self.shards_for(event_json):
            self._deliver_to(shard_id, client, seq, event_json)
        self.events_delivered += 1

    # -- drain / results ---------------------------------------------------

    def drain(self) -> None:
        """Flush every shard's parked columnar batch (SIGTERM/FIN path)."""
        for worker in self.workers:
            if not worker.alive:
                self._restart(worker, cause="drain")
            worker.drain()

    def findings(self) -> list[tuple[int, str, Finding, int]]:
        """All shards' findings as ``(shard, tool, finding, count)`` rows.

        Shard order (then tool order, then report order) — deterministic,
        so the server's finding stream is reproducible run to run.
        """
        self.drain()
        rows: list[tuple[int, str, Finding, int]] = []
        for worker in self.workers:
            for tool, finding, count in worker.findings():
                rows.append((worker.shard_id, tool, finding, count))
        return rows

    def stats(self) -> dict:
        return {
            "shards": [w.stats() for w in self.workers],
            "router": self.router.stats(),
            "delivery_attempts": self.delivery_attempts,
            "events_delivered": self.events_delivered,
            "duplicates_dropped": self.duplicates_dropped,
            "worker_restarts": self.worker_restarts,
        }
