"""Network front ends: socket and stdio servers with graceful drain.

The protocol engine (:class:`~repro.serve.server.AnalysisServer`) is
transport-agnostic; this module binds it to the two front ends a
deployment actually uses:

* :func:`serve_socket` — a TCP listener; each accepted connection gets
  its own :class:`~repro.serve.server.ServerConnection` (own frame
  decoder, shared session table, so a client may reconnect and resume
  its sequence space);
* :func:`serve_stdio` — one connection over ``stdin``/``stdout``, the
  shape an OMPT shim subprocess pipes into.

**Graceful drain.**  Both front ends install a ``SIGTERM``/``SIGINT``
handler that stops accepting input and calls
:meth:`AnalysisServer.shutdown`, which flushes every shard's parked
columnar batch before the process exits — an in-flight batch is never
lost to shutdown timing.  The drain summary is written to ``stderr`` as
one JSON line so supervisors (systemd, CI) can log it.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading

from .server import AnalysisServer, ServerConfig

__all__ = ["serve_socket", "serve_stdio", "serve_connection"]

#: Socket receive chunk size.  Deliberately small enough that frames
#: regularly split across reads — the decoder's resync path is exercised
#: in production, not just in tests.
RECV_CHUNK = 4096


def serve_connection(server: AnalysisServer, sock: socket.socket) -> dict:
    """Pump one socket until EOF through a fresh server connection.

    Separated from the accept loop so tests can drive it directly with
    ``socket.socketpair()``.  Returns per-connection stats.
    """
    connection = server.connection()
    bytes_in = bytes_out = 0
    while True:
        try:
            data = sock.recv(RECV_CHUNK)
        except OSError:
            break
        if not data:
            break
        bytes_in += len(data)
        responses = connection.handle_bytes(data)
        if responses:
            bytes_out += len(responses)
            try:
                sock.sendall(responses)
            except OSError:
                break
    # EOF: reject (never zero-pad) a truncated trailing frame.
    errors = connection.eof()
    return {
        "bytes_in": bytes_in,
        "bytes_out": bytes_out,
        "trailing_errors": [str(e) for e in errors],
    }


def _install_drain_handler(server: AnalysisServer, stop: threading.Event) -> None:
    """SIGTERM/SIGINT → stop accepting, flush parked batches, log drain."""

    def _drain(signum, frame):  # pragma: no cover - signal timing
        stop.set()
        summary = server.shutdown()
        summary["signal"] = signal.Signals(signum).name
        print(json.dumps({"drain": summary}, sort_keys=True), file=sys.stderr)

    try:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    except ValueError:
        # Not the main thread (embedded/test use): drain stays manual.
        pass


def serve_socket(
    config: ServerConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_connections: int | None = None,
    ready: "threading.Event | None" = None,
    bound_port: "list[int] | None" = None,
) -> dict:
    """Listen on ``host:port`` and serve until SIGTERM (or connection cap).

    ``port=0`` binds an ephemeral port; the chosen port is appended to
    ``bound_port`` (if given) and announced on stderr, and ``ready`` is
    set once the listener accepts connections — both exist so a CI job
    can boot the server in a thread/subprocess without a race.
    ``max_connections`` bounds the accept loop for tests and one-shot CI
    jobs; production leaves it ``None`` and exits on signal.
    """
    server = AnalysisServer(config)
    stop = threading.Event()
    _install_drain_handler(server, stop)
    listener = socket.create_server((host, port))
    listener.settimeout(0.2)  # poll the stop flag between accepts
    actual_port = listener.getsockname()[1]
    if bound_port is not None:
        bound_port.append(actual_port)
    print(
        json.dumps({"listening": {"host": host, "port": actual_port}}),
        file=sys.stderr,
        flush=True,
    )
    if ready is not None:
        ready.set()
    served = 0
    connections: list[dict] = []
    try:
        while not stop.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                connections.append(serve_connection(server, conn))
            served += 1
            if max_connections is not None and served >= max_connections:
                break
    finally:
        listener.close()
    if not server.drained:
        server.shutdown()
    return {
        "port": actual_port,
        "connections_served": served,
        "connection_stats": connections,
        "sessions": len(server.sessions),
    }


def serve_stdio(
    config: ServerConfig,
    *,
    stdin=None,
    stdout=None,
) -> dict:
    """Serve one connection over stdin/stdout until EOF or SIGTERM.

    ``stdin``/``stdout`` default to the process's binary standard
    streams; tests pass :class:`io.BytesIO` pairs.
    """
    server = AnalysisServer(config)
    stop = threading.Event()
    _install_drain_handler(server, stop)
    reader = stdin if stdin is not None else sys.stdin.buffer
    writer = stdout if stdout is not None else sys.stdout.buffer
    connection = server.connection()
    frames_out = 0
    while not stop.is_set():
        data = reader.read(RECV_CHUNK)
        if not data:
            break
        responses = connection.handle_bytes(data)
        if responses:
            frames_out += 1
            writer.write(responses)
            writer.flush()
    errors = connection.eof()
    if not server.drained:
        server.shutdown()
    return {
        "sessions": len(server.sessions),
        "trailing_errors": [str(e) for e in errors],
    }
