"""Network front ends: socket and stdio servers with graceful drain.

The protocol engine (:class:`~repro.serve.server.AnalysisServer`) is
transport-agnostic; this module binds it to the two front ends a
deployment actually uses:

* :func:`serve_socket` — a TCP listener; each accepted connection gets
  its own :class:`~repro.serve.server.ServerConnection` (own frame
  decoder, shared session table, so a client may reconnect and resume
  its sequence space);
* :func:`serve_stdio` — one connection over ``stdin``/``stdout``, the
  shape an OMPT shim subprocess pipes into.

**Graceful drain.**  Both front ends install a ``SIGTERM``/``SIGINT``
handler that stops accepting input and calls
:meth:`AnalysisServer.shutdown`, which flushes every shard's parked
columnar batch before the process exits — an in-flight batch is never
lost to shutdown timing.  The drain summary is written to ``stderr`` as
one JSON line so supervisors (systemd, CI) can log it.
"""

from __future__ import annotations

import signal
import socket
import sys
import threading

from ..observe import log as _observe_log
from .server import AnalysisServer, ServerConfig

__all__ = ["serve_socket", "serve_stdio", "serve_connection"]

#: Socket receive chunk size.  Deliberately small enough that frames
#: regularly split across reads — the decoder's resync path is exercised
#: in production, not just in tests.
RECV_CHUNK = 4096


def serve_connection(server: AnalysisServer, sock: socket.socket) -> dict:
    """Pump one socket until EOF through a fresh server connection.

    Separated from the accept loop so tests can drive it directly with
    ``socket.socketpair()``.  Returns per-connection stats.
    """
    connection = server.connection()
    bytes_in = bytes_out = 0
    while True:
        try:
            data = sock.recv(RECV_CHUNK)
        except OSError:
            break
        if not data:
            break
        bytes_in += len(data)
        responses = connection.handle_bytes(data)
        if responses:
            bytes_out += len(responses)
            try:
                sock.sendall(responses)
            except OSError:
                break
        if connection.close_requested:
            # HTTP observability request answered: one response per
            # connection, then close (Connection: close semantics).
            break
    # EOF: reject (never zero-pad) a truncated trailing frame.
    errors = connection.eof()
    return {
        "bytes_in": bytes_in,
        "bytes_out": bytes_out,
        "trailing_errors": [str(e) for e in errors],
    }


def _front_end_log(observer) -> "_observe_log.ObserveLog":
    """The structured log a front end announces lifecycle events on.

    With an observer, its log (which may be file-backed via
    ``--log-file``); without one, a fresh stderr-backed logger — the
    ad-hoc ``print`` lines this replaces were stderr JSON too, but now
    every line carries the uniform ``event``/``ordinal`` shape.
    """
    if observer is not None:
        return observer.log
    return _observe_log.ObserveLog(sink=sys.stderr)


def _install_drain_handler(
    server: AnalysisServer,
    stop: threading.Event,
    log: "_observe_log.ObserveLog",
) -> None:
    """SIGTERM/SIGINT → stop accepting, flush parked batches, log drain."""

    def _drain(signum, frame):  # pragma: no cover - signal timing
        stop.set()
        summary = server.shutdown()
        log.event(
            "serve.drain",
            signal=signal.Signals(signum).name,
            **summary,
        )

    try:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    except ValueError:
        # Not the main thread (embedded/test use): drain stays manual.
        pass


def serve_socket(
    config: ServerConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_connections: int | None = None,
    ready: "threading.Event | None" = None,
    bound_port: "list[int] | None" = None,
    observer=None,
) -> dict:
    """Listen on ``host:port`` and serve until SIGTERM (or connection cap).

    ``port=0`` binds an ephemeral port; the chosen port is appended to
    ``bound_port`` (if given) and announced on stderr, and ``ready`` is
    set once the listener accepts connections — both exist so a CI job
    can boot the server in a thread/subprocess without a race.
    ``max_connections`` bounds the accept loop for tests and one-shot CI
    jobs; production leaves it ``None`` and exits on signal.
    """
    server = AnalysisServer(config, observer)
    log = _front_end_log(observer)
    stop = threading.Event()
    _install_drain_handler(server, stop, log)
    listener = socket.create_server((host, port))
    listener.settimeout(0.2)  # poll the stop flag between accepts
    actual_port = listener.getsockname()[1]
    if bound_port is not None:
        bound_port.append(actual_port)
    log.event(
        "serve.listening",
        host=host,
        port=actual_port,
        shards=config.n_shards,
        queue_cap=config.queue_cap,
        observability=observer is not None,
    )
    if ready is not None:
        ready.set()
    served = 0
    connections: list[dict] = []
    try:
        while not stop.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                connections.append(serve_connection(server, conn))
            served += 1
            if max_connections is not None and served >= max_connections:
                break
    finally:
        listener.close()
    if not server.drained:
        server.shutdown()
    return {
        "port": actual_port,
        "connections_served": served,
        "connection_stats": connections,
        "sessions": len(server.sessions),
    }


def serve_stdio(
    config: ServerConfig,
    *,
    stdin=None,
    stdout=None,
    observer=None,
) -> dict:
    """Serve one connection over stdin/stdout until EOF or SIGTERM.

    ``stdin``/``stdout`` default to the process's binary standard
    streams; tests pass :class:`io.BytesIO` pairs.  Structured log lines
    go to the observer's log (or stderr) — never to ``stdout``, which is
    the wire stream.
    """
    server = AnalysisServer(config, observer)
    log = _front_end_log(observer)
    stop = threading.Event()
    _install_drain_handler(server, stop, log)
    log.event(
        "serve.listening",
        transport="stdio",
        shards=config.n_shards,
        queue_cap=config.queue_cap,
        observability=observer is not None,
    )
    reader = stdin if stdin is not None else sys.stdin.buffer
    writer = stdout if stdout is not None else sys.stdout.buffer
    connection = server.connection()
    frames_out = 0
    while not stop.is_set():
        data = reader.read(RECV_CHUNK)
        if not data:
            break
        responses = connection.handle_bytes(data)
        if responses:
            frames_out += 1
            writer.write(responses)
            writer.flush()
    errors = connection.eof()
    if not server.drained:
        server.shutdown()
    return {
        "sessions": len(server.sessions),
        "trailing_errors": [str(e) for e in errors],
    }
