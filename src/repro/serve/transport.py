"""Transports: the loopback pipe (with chaos hooks) for in-process serving.

:class:`LoopbackTransport` is the reference transport — a synchronous
byte pipe into an :class:`~repro.serve.server.AnalysisServer` connection.
It is also the chaos injection point for the *wire*: a
:class:`~repro.faults.plan.FaultPlan` containing frame faults perturbs
client→server frames by occurrence index, exactly like the OMPT-stream
faults of PR-2 but one layer down:

* ``FRAME_DROP`` — the ``index``-th frame never arrives (no response
  either; the client's retry path must recover it);
* ``FRAME_DUP`` — the ``index``-th frame is delivered twice (the server's
  ``(client, seq)`` dedup must drop the copy);
* ``FRAME_REORDER`` — the ``index``-th frame is held and delivered after
  its successor (the server's reorder buffer must untangle it).

Socket and stdio transports live in :mod:`repro.serve.net`.
"""

from __future__ import annotations

from ..faults.plan import FaultKind, FaultPlan
from .server import AnalysisServer

__all__ = ["LoopbackTransport"]


class LoopbackTransport:
    """Synchronous in-process pipe with deterministic frame faults."""

    def __init__(self, server: AnalysisServer, plan: FaultPlan | None = None):
        self.connection = server.connection()
        self._sends = 0
        self._held: bytes | None = None
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self._drop_at: set[int] = set()
        self._dup_at: set[int] = set()
        self._reorder_at: set[int] = set()
        if plan is not None:
            for fault in plan.faults:
                if fault.kind is FaultKind.FRAME_DROP:
                    self._drop_at.add(fault.index)
                elif fault.kind is FaultKind.FRAME_DUP:
                    self._dup_at.add(fault.index)
                elif fault.kind is FaultKind.FRAME_REORDER:
                    self._reorder_at.add(fault.index)

    def send(self, data: bytes) -> bytes:
        """One client→server frame, possibly perturbed; returns responses."""
        self._sends += 1
        index = self._sends
        out = bytearray()
        if index in self._reorder_at and self._held is None:
            # Hold this frame; it rides behind the next one.
            self._held = data
            self.reordered += 1
            return b""
        if index in self._drop_at:
            self.dropped += 1
            # The frame vanishes in flight; any held frame stays held.
            return b""
        out.extend(self.connection.handle_bytes(data))
        if index in self._dup_at:
            self.duplicated += 1
            out.extend(self.connection.handle_bytes(data))
        if self._held is not None:
            held, self._held = self._held, None
            out.extend(self.connection.handle_bytes(held))
        return bytes(out)

    def stats(self) -> dict:
        return {
            "sends": self._sends,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
        }
