"""Address-range sharding: which shard owns which slice of memory.

Detector state — ARBALEST's variable state machines, Archer's per-granule
epochs, the allocators' extent maps — is keyed by address, and device
address windows are globally disjoint (:mod:`repro.memory.layout`), so an
address-range partition splits the detector into independent shards *if*
every event about one variable lands on one shard.  Two rules make that
true:

1. **Claims follow allocations.**  An allocation event claims
   ``[addr, addr + nbytes)`` for a shard (round-robin over arrival order,
   which is deterministic because the server applies frames in sequence
   order).  Later address lookups route by containment, falling back to
   the nearest preceding claim — exactly how the detector itself
   attributes a stray access to the allocation it overran, so a buffer
   overflow past the end of a claim still reaches the shard that owns the
   overrun allocation.

2. **Mapping pairs bind.**  A data op carries both the original variable
   (host) and corresponding variable (device) addresses.  The CV range is
   bound to the OV's shard the first time they appear together, so both
   sides of a mapping — whose interleaved host/device accesses are what
   the VSM consumes — are always analyzed by the same worker.

Claims are never retired on free: a use-after-free access must keep
routing to the shard that watched the allocation die.
"""

from __future__ import annotations

from bisect import bisect_right, insort

__all__ = ["AddressRouter"]


class AddressRouter:
    """Deterministic address-range → shard assignment."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self._bases: list[int] = []
        self._claims: dict[int, tuple[int, int]] = {}  # base -> (end, shard)
        self._next_shard = 0
        self.claims_made = 0
        self.bindings = 0
        self.rebinds = 0

    # -- internals ---------------------------------------------------------

    def _owner_at(self, addr: int) -> tuple[int, int, int] | None:
        """The claim ``(base, end, shard)`` containing or preceding ``addr``."""
        i = bisect_right(self._bases, addr)
        if i == 0:
            return None
        base = self._bases[i - 1]
        end, shard = self._claims[base]
        return base, end, shard

    def _assign(self) -> int:
        shard = self._next_shard
        self._next_shard = (self._next_shard + 1) % self.n_shards
        return shard

    # -- claims ------------------------------------------------------------

    def claim(self, addr: int, size: int, *, shard: int | None = None) -> int:
        """Claim ``[addr, addr + size)``; returns the owning shard.

        If the range is already inside an existing claim, the existing
        owner wins (address reuse after free keeps its shard).  A claim
        that extends past an existing one grows it.
        """
        size = max(size, 1)
        hit = self._owner_at(addr)
        if hit is not None:
            base, end, owner = hit
            if addr < end:  # containment (possibly partial): extend if needed
                if addr + size > end:
                    self._claims[base] = (addr + size, owner)
                return owner
        owner = shard if shard is not None else self._assign()
        insort(self._bases, addr)
        self._claims[addr] = (addr + size, owner)
        self.claims_made += 1
        return owner

    def bind(self, ov_addr: int, cv_addr: int, size: int) -> tuple[int, int]:
        """Co-locate a mapping pair; returns ``(ov_shard, cv_shard)``.

        The OV's shard is authoritative.  The device allocation usually
        claims the CV range round-robin *before* the data op names its OV
        — so an already-claimed CV range is **rebound** to the OV's shard
        here.  The rebind is sound because allocation events broadcast to
        every shard (the new owner already knows the allocation) and the
        data op is ordered before any device access to the CV, so no
        access history is stranded on the old owner.
        """
        ov_shard = self.claim(ov_addr, size)
        hit = self._owner_at(cv_addr)
        if hit is not None and cv_addr < hit[1]:
            base, end, old = hit
            if old != ov_shard:
                self._claims[base] = (max(end, cv_addr + size), ov_shard)
                self.rebinds += 1
            cv_shard = ov_shard
        else:
            cv_shard = self.claim(cv_addr, size, shard=ov_shard)
        self.bindings += 1
        return ov_shard, cv_shard

    # -- lookup ------------------------------------------------------------

    def route(self, addr: int) -> int:
        """The shard responsible for ``addr``.

        Containment first; then the nearest preceding claim (overrun
        attribution); then the nearest following claim; and for a bare
        address with no claims at all, shard 0 — any deterministic answer
        is correct, since no detector state exists anywhere yet.
        """
        hit = self._owner_at(addr)
        if hit is not None:
            return hit[2]  # preceding claim (containment included)
        if self._bases:  # address below every claim
            return self._claims[self._bases[0]][1]
        return 0

    def stats(self) -> dict:
        return {
            "claims": self.claims_made,
            "bindings": self.bindings,
            "rebinds": self.rebinds,
            "shards": self.n_shards,
        }
