"""Dynamic data dependence graphs (Figure 3 of the paper).

Figure 3 explains the Fig-2 nondeterminism by drawing, for each probable
interleaving, the dataflow between host writes, kernel writes, transfers,
and the final read.  This module builds that graph from a recorded event
trace:

* every program write, kernel write, and transfer becomes a node;
* every read gets *reads-from* edges to the writes whose values it
  observes (per 8-byte granule, deduplicated);
* transfers are both a read of their source and a write of their
  destination, so dataflow chains through them — exactly how a value
  produced on the accelerator reaches a host read via the D2H copy.

Because the simulation is deterministic per schedule, running the same
program under two schedules and diffing the two graphs reproduces the
paper's side-by-side figure; ``render_ascii``/``to_dot`` produce the
human-readable forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from ..events.records import Access, AllocationEvent, MemcpyEvent
from ..memory.layout import GRANULE


@dataclass(frozen=True)
class DdgNode:
    """One dataflow event: a write, a transfer, or a read."""

    index: int
    kind: str  # "write" | "read" | "transfer"
    device_id: int
    thread_id: int
    variable: str
    location: str

    @property
    def label(self) -> str:
        where = "host" if self.device_id == 0 else f"dev{self.device_id}"
        var = f"({self.variable})" if self.variable else ""
        if self.kind == "transfer":
            return f"memcpy#{self.index}{var}"
        op = "W" if self.kind == "write" else "R"
        return f"{op}_{where}#{self.index}{var}"


class DependenceGraph:
    """The reads-from graph of one execution trace."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._nodes: list[DdgNode] = []
        # (device, granule) -> writer node index
        self._last_writer: dict[tuple[int, int], int] = {}
        # address -> variable label, learned from allocation events
        self._labels: dict[int, tuple[int, str]] = {}
        self._label_bases: list[int] = []

    # -- construction -----------------------------------------------------

    def _variable_at(self, address: int) -> str:
        from bisect import bisect_right

        i = bisect_right(self._label_bases, address)
        if not i:
            return ""
        base = self._label_bases[i - 1]
        nbytes, label = self._labels[base]
        return label if address < base + nbytes else ""

    def _add_node(
        self, kind: str, device_id: int, thread_id: int, address: int, location: str
    ) -> DdgNode:
        node = DdgNode(
            index=len(self._nodes),
            kind=kind,
            device_id=device_id,
            thread_id=thread_id,
            variable=self._variable_at(address),
            location=location,
        )
        self._nodes.append(node)
        self.graph.add_node(node)
        return node

    def _granules(self, device: int, address: int, span: int):
        first = address // GRANULE
        last = (address + max(span, 1) - 1) // GRANULE
        return [(device, g) for g in range(first, last + 1)]

    def _reads_from(self, node: DdgNode, cells) -> None:
        for cell in cells:
            writer = self._last_writer.get(cell)
            if writer is not None:
                self.graph.add_edge(self._nodes[writer], node)

    def _writes(self, node: DdgNode, cells) -> None:
        for cell in cells:
            self._last_writer[cell] = node.index

    def feed(self, event: object) -> None:
        """Consume one trace event."""
        if isinstance(event, AllocationEvent):
            if not event.is_free and event.label:
                from bisect import insort

                self._labels[event.address] = (event.nbytes, event.label)
                insort(self._label_bases, event.address)
            return
        if isinstance(event, Access):
            cells = self._granules(event.device_id, event.address, event.span)
            loc = str(event.location)
            if event.is_write:
                node = self._add_node(
                    "write", event.device_id, event.thread_id, event.address, loc
                )
                self._writes(node, cells)
            else:
                node = self._add_node(
                    "read", event.device_id, event.thread_id, event.address, loc
                )
                self._reads_from(node, cells)
            return
        if isinstance(event, MemcpyEvent):
            node = self._add_node(
                "transfer",
                event.dst_device,
                event.thread_id,
                event.dst_address,
                str(event.stack[0]),
            )
            self._reads_from(
                node, self._granules(event.src_device, event.src_address, event.nbytes)
            )
            self._writes(
                node, self._granules(event.dst_device, event.dst_address, event.nbytes)
            )

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> tuple[DdgNode, ...]:
        return tuple(self._nodes)

    def reads(self) -> list[DdgNode]:
        return [n for n in self._nodes if n.kind == "read"]

    def sources_of(self, node: DdgNode) -> list[DdgNode]:
        """The writes/transfers whose values ``node`` directly observes."""
        return sorted(self.graph.predecessors(node), key=lambda n: n.index)

    def value_provenance(self, node: DdgNode) -> list[DdgNode]:
        """All writes reaching ``node`` transitively (the dataflow cone)."""
        return sorted(nx.ancestors(self.graph, node), key=lambda n: n.index)

    def signature(self) -> frozenset[tuple[str, str]]:
        """Edge set by label — comparable across runs of the same program."""
        return frozenset(
            (a.label.split("#")[0] + a.variable, b.label.split("#")[0] + b.variable)
            for a, b in self.graph.edges
        )

    # -- rendering ---------------------------------------------------------------

    def render_ascii(self, *, variable: str | None = None) -> str:
        lines = []
        for node in self._nodes:
            if variable is not None and node.variable != variable:
                continue
            srcs = self.sources_of(node)
            arrow = (
                " <- " + ", ".join(s.label for s in srcs) if srcs else ""
            )
            lines.append(f"{node.label}{arrow}    [{node.location}]")
        return "\n".join(lines)

    def to_dot(self) -> str:
        lines = ["digraph ddg {"]
        for node in self._nodes:
            shape = {"write": "box", "read": "ellipse", "transfer": "diamond"}[
                node.kind
            ]
            lines.append(f'  n{node.index} [label="{node.label}" shape={shape}];')
        for a, b in self.graph.edges:
            lines.append(f"  n{a.index} -> n{b.index};")
        lines.append("}")
        return "\n".join(lines)


def build_ddg(events: Iterable[object]) -> DependenceGraph:
    """Build the dependence graph of a recorded trace."""
    ddg = DependenceGraph()
    for event in events:
        ddg.feed(event)
    return ddg
