"""Trace analyses: the Fig-3 dynamic data dependence graph."""

from .ddg import DdgNode, DependenceGraph, build_ddg

__all__ = ["DependenceGraph", "DdgNode", "build_ddg"]
