"""Happens-before machinery: vector clocks and FastTrack epochs."""

from .epoch import (
    CLOCK_BITS,
    EMPTY_EPOCH,
    MAX_CLOCK,
    MAX_TID,
    TID_BITS,
    epoch_clock,
    epoch_leq,
    epoch_tid,
    pack_epoch,
    unpack_epoch,
)
from .vector_clock import VectorClock

__all__ = [
    "VectorClock",
    "pack_epoch",
    "unpack_epoch",
    "epoch_tid",
    "epoch_clock",
    "epoch_leq",
    "EMPTY_EPOCH",
    "TID_BITS",
    "CLOCK_BITS",
    "MAX_TID",
    "MAX_CLOCK",
]
