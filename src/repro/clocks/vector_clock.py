"""Vector clocks over logical threads.

The simulated runtime numbers logical threads (the initial host thread and
every target-region task) with small consecutive integers, so a dense
list-backed clock is both simpler and faster than a sparse map.  Clocks grow
on demand; absent components are zero.

These are the clocks behind the Archer model's FastTrack algorithm and
behind Theorem-1 certification, so the comparison operators implement the
standard happens-before partial order:

* ``a.leq(b)``  — every component of ``a`` is <= the matching one in ``b``;
* two clocks are *concurrent* when neither ``leq`` holds.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class VectorClock:
    """A mutable dense vector clock."""

    __slots__ = ("_c",)

    def __init__(self, components: Iterable[int] = ()):
        self._c: list[int] = list(components)

    # -- component access ---------------------------------------------------

    def get(self, tid: int) -> int:
        return self._c[tid] if tid < len(self._c) else 0

    def set(self, tid: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"clock component must be non-negative, got {value}")
        self._grow(tid)
        self._c[tid] = value

    def increment(self, tid: int) -> int:
        """Tick ``tid``'s component; returns the new value."""
        self._grow(tid)
        self._c[tid] += 1
        return self._c[tid]

    def _grow(self, tid: int) -> None:
        if tid >= len(self._c):
            self._c.extend([0] * (tid + 1 - len(self._c)))

    # -- lattice operations ------------------------------------------------

    def join(self, other: "VectorClock") -> None:
        """In-place component-wise maximum (release/acquire merge)."""
        oc = other._c
        self._grow(len(oc) - 1) if oc else None
        for i, v in enumerate(oc):
            if v > self._c[i]:
                self._c[i] = v

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def leq(self, other: "VectorClock") -> bool:
        """Whether ``self`` happens-before-or-equals ``other``."""
        for i, v in enumerate(self._c):
            if v > other.get(i):
                return False
        return True

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        n = max(len(self._c), len(other._c))
        return all(self.get(i) == other.get(i) for i in range(n))

    def __hash__(self) -> int:  # pragma: no cover - clocks are not dict keys
        raise TypeError("VectorClock is mutable and unhashable")

    def __iter__(self) -> Iterator[int]:
        return iter(self._c)

    def __len__(self) -> int:
        return len(self._c)

    def __repr__(self) -> str:
        return f"VectorClock({self._c!r})"
