"""FastTrack epochs packed exactly as the paper's shadow word does.

Table II of the paper reserves 12 bits for the thread id and 42 bits for a
scalar clock inside each shadow state.  An *epoch* ``tid@clock`` summarises
"the access by thread ``tid`` at its local time ``clock``"; FastTrack's key
insight is that a last-write (and usually last-read) is one epoch, not a
whole vector clock, giving O(1) shadow updates in the common case.
"""

from __future__ import annotations

from .vector_clock import VectorClock

#: Bit widths from Table II.
TID_BITS = 12
CLOCK_BITS = 42

MAX_TID = (1 << TID_BITS) - 1
MAX_CLOCK = (1 << CLOCK_BITS) - 1

#: The zero epoch: "never accessed".
EMPTY_EPOCH = 0


def pack_epoch(tid: int, clock: int) -> int:
    """Pack ``tid@clock`` into one integer (tid in the high bits)."""
    if not 0 <= tid <= MAX_TID:
        raise ValueError(f"thread id {tid} exceeds {TID_BITS} bits")
    if not 0 <= clock <= MAX_CLOCK:
        raise ValueError(f"clock {clock} exceeds {CLOCK_BITS} bits")
    return (tid << CLOCK_BITS) | clock


def unpack_epoch(epoch: int) -> tuple[int, int]:
    """Inverse of :func:`pack_epoch`; returns ``(tid, clock)``."""
    return epoch >> CLOCK_BITS, epoch & MAX_CLOCK


def epoch_tid(epoch: int) -> int:
    """The thread-id field of a packed epoch."""
    return epoch >> CLOCK_BITS


def epoch_clock(epoch: int) -> int:
    """The scalar-clock field of a packed epoch."""
    return epoch & MAX_CLOCK


def epoch_leq(epoch: int, clock: VectorClock) -> bool:
    """Whether the access summarised by ``epoch`` happens-before ``clock``.

    The FastTrack ``e <= C`` test: the epoch's scalar clock must not exceed
    the observer's knowledge of that thread.  The empty epoch trivially
    happens-before everything.
    """
    if epoch == EMPTY_EPOCH:
        return True
    return epoch_clock(epoch) <= clock.get(epoch_tid(epoch))
