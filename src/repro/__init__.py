"""repro — a reproduction of ARBALEST (IPDPS 2021).

ARBALEST is an on-the-fly detector of *data mapping issues* in
heterogeneous OpenMP applications: reads that fail to observe the latest
write because ``map``/``target update``/``nowait`` clauses are wrong.  This
package rebuilds the whole stack in Python:

* :mod:`repro.openmp` — a simulated target-offloading runtime (devices,
  Table-I data mapping with reference counting, async tasks, unified memory);
* :mod:`repro.core` — ARBALEST itself: the variable state machine, packed
  shadow memory, interval tree, buffer-overflow extension, Theorem-1
  certification, and Fig-7-style reports;
* :mod:`repro.tools` — the four baseline detectors of the paper's
  comparison (Valgrind, Archer, AddressSanitizer, MemorySanitizer) as
  faithful behavioural models over the same event stream;
* :mod:`repro.dracc` / :mod:`repro.specaccel` — the benchmark suites the
  evaluation uses;
* :mod:`repro.harness` — runners regenerating Table III and Figures 7-9,
  plus the chaos campaign;
* :mod:`repro.faults` — deterministic fault injection (seeded plans of
  OOM/transfer/latency/callback-stream/reset faults) driving the chaos
  campaign's recovery guarantees.

Quickstart::

    from repro import Arbalest, TargetRuntime, tofrom

    rt = TargetRuntime(n_devices=1)
    arbalest = Arbalest().attach(rt.machine)
    a = rt.array("a", 100, "f8")
    a.fill(0.0)
    rt.target(lambda ctx: ctx["a"].fill(1.0), maps=[tofrom(a)])
    rt.finalize()
    print(arbalest.findings)   # -> [] (program is correct)
"""

from .core import (
    Arbalest,
    Certificate,
    MultiDeviceArbalest,
    RepairingArbalest,
    certify,
)
from .openmp import (
    HostArray,
    KernelContext,
    Machine,
    MapSpec,
    MapType,
    Schedule,
    TargetRuntime,
    alloc,
    delete,
    from_,
    release,
    to,
    tofrom,
)
from .tools import Finding, FindingKind, Tool

__version__ = "1.0.0"

__all__ = [
    "Arbalest",
    "MultiDeviceArbalest",
    "RepairingArbalest",
    "Certificate",
    "certify",
    "TargetRuntime",
    "Machine",
    "Schedule",
    "HostArray",
    "KernelContext",
    "MapSpec",
    "MapType",
    "to",
    "from_",
    "tofrom",
    "alloc",
    "release",
    "delete",
    "Tool",
    "Finding",
    "FindingKind",
    "__version__",
]
