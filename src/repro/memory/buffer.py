"""Raw storage backing the simulated address space.

A :class:`RawBuffer` is the bytes behind one allocator extent.  It is a thin
wrapper over a ``numpy.uint8`` array with helpers for the three operations
the runtime performs on storage:

* typed views (``as_array``) so kernels compute directly on numpy — the
  simulation never loops over scalars for bulk math (HPC guide rule);
* byte-range reads/writes for scalar accesses;
* ``memcpy``-style block copies between buffers, the primitive the runtime
  uses to simulate host↔device transfers (§V of the paper: "memory transfer
  is simulated by dynamic memory allocation and memory block copy").

RawBuffer deliberately knows nothing about instrumentation; the instrumented
array views live in :mod:`repro.openmp.arrays` and call down into here after
publishing their access events.
"""

from __future__ import annotations

import numpy as np

from .allocator import Extent
from .errors import OutOfBoundsError


class RawBuffer:
    """Bytes behind one extent of one device's address window."""

    __slots__ = ("extent", "device_id", "data")

    def __init__(self, extent: Extent, device_id: int, *, fill: int | None = None):
        self.extent = extent
        self.device_id = device_id
        # Fresh device memory holds garbage; using a recognisable pattern
        # (0xCB, "allocated-but-uninitialised") makes stale/uninit reads
        # produce loudly-wrong values in examples rather than lucky zeros.
        pattern = 0xCB if fill is None else fill
        self.data = np.full(extent.size, pattern, dtype=np.uint8)

    # -- address helpers -------------------------------------------------

    @property
    def base(self) -> int:
        return self.extent.base

    @property
    def size(self) -> int:
        return self.extent.size

    def offset_of(self, address: int, size: int = 1) -> int:
        """Translate an absolute address into an offset, bounds-checked."""
        if not self.extent.contains(address, size):
            raise OutOfBoundsError(address, size)
        return address - self.extent.base

    # -- typed access ------------------------------------------------------

    def as_array(self, dtype: np.dtype | str, *, offset: int = 0, count: int = -1):
        """A numpy view of the buffer's bytes starting at ``offset``.

        The view shares storage: writes through it mutate the buffer.  When
        ``count`` is negative the view extends to the end of the buffer.
        """
        dt = np.dtype(dtype)
        avail = (self.size - offset) // dt.itemsize
        n = avail if count < 0 else count
        if offset < 0 or offset + n * dt.itemsize > self.size:
            raise OutOfBoundsError(self.base + offset, max(n, 0) * dt.itemsize)
        return self.data[offset : offset + n * dt.itemsize].view(dt)

    # -- byte access --------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> np.ndarray:
        off = self.offset_of(address, size)
        return self.data[off : off + size]

    def write_bytes(self, address: int, payload: np.ndarray | bytes) -> None:
        buf = np.frombuffer(payload, dtype=np.uint8) if isinstance(payload, (bytes, bytearray)) else payload
        off = self.offset_of(address, len(buf))
        self.data[off : off + len(buf)] = buf

    # -- transfers -----------------------------------------------------------

    def copy_from(
        self,
        src: "RawBuffer",
        *,
        dst_offset: int = 0,
        src_offset: int = 0,
        nbytes: int | None = None,
    ) -> int:
        """memcpy ``nbytes`` from ``src`` into this buffer; returns the count.

        Default copies the overlapping prefix of both buffers, which is what
        the runtime wants when OV and CV were allocated with the same size.
        """
        if nbytes is None:
            nbytes = min(self.size - dst_offset, src.size - src_offset)
        if nbytes < 0 or dst_offset + nbytes > self.size:
            raise OutOfBoundsError(self.base + dst_offset, max(nbytes, 0))
        if src_offset + nbytes > src.size:
            raise OutOfBoundsError(src.base + src_offset, nbytes)
        self.data[dst_offset : dst_offset + nbytes] = src.data[
            src_offset : src_offset + nbytes
        ]
        return nbytes
