"""First-fit free-list allocator over a device's address window.

Each simulated device owns one :class:`Allocator`.  The allocator hands out
*address ranges only* — the bytes themselves live in per-allocation numpy
buffers managed by :mod:`repro.memory.buffer`.  Splitting addressing from
storage keeps allocation O(free-list length) without ever committing a 4 GiB
backing array, and makes freed-address reuse (which ASan's quarantine model
needs to reason about) explicit and testable.

The free list is kept sorted by base address and adjacent free blocks are
coalesced on ``free``, so repeated alloc/free cycles do not fragment the
window.  ``alignment`` defaults to the 8-byte granule so every allocation
starts granule-aligned, matching the paper's assumption that shadow granules
never straddle two variables.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

from .errors import InvalidFreeError, OutOfMemoryError
from .layout import GRANULE, Window, align_up


@dataclass(frozen=True)
class Extent:
    """A live allocation: ``[base, base + size)``."""

    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.end


class Allocator:
    """First-fit allocator with address-ordered free list and coalescing."""

    def __init__(self, window: Window, *, alignment: int = GRANULE, gap: int = 64):
        if alignment <= 0 or (alignment & (alignment - 1)):
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        if gap < 0 or gap % alignment:
            raise ValueError(f"gap must be a non-negative multiple of alignment, got {gap}")
        self._window = window
        self._alignment = alignment
        # Unaddressable padding reserved after every block, standing in for
        # allocator metadata/redzones: real heaps never place two objects
        # back to back, and tools rely on overflows landing in such holes.
        self._gap = gap
        self._reserved: dict[int, int] = {}
        # Parallel sorted lists of (base) and (size) for free blocks.
        self._free_bases: list[int] = [window.base]
        self._free_sizes: dict[int, int] = {window.base: window.size}
        self._live: dict[int, Extent] = {}
        self._peak_bytes = 0
        self._live_bytes = 0

    # -- introspection -------------------------------------------------

    @property
    def window(self) -> Window:
        return self._window

    @property
    def live_bytes(self) -> int:
        """Total bytes currently allocated."""
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`live_bytes`."""
        return self._peak_bytes

    @property
    def live_extents(self) -> tuple[Extent, ...]:
        return tuple(sorted(self._live.values(), key=lambda e: e.base))

    def extent_at(self, address: int) -> Extent | None:
        """The live extent containing ``address``, or ``None``.

        Used by tools to classify wild accesses; O(log n) over live extents.
        """
        bases = sorted(self._live)
        i = bisect_left(bases, address)
        if i < len(bases) and bases[i] == address:
            return self._live[bases[i]]
        if i == 0:
            return None
        candidate = self._live[bases[i - 1]]
        return candidate if candidate.contains(address) else None

    # -- allocation ----------------------------------------------------

    def alloc(self, size: int) -> Extent:
        """Allocate ``size`` bytes; the returned extent is alignment-rounded.

        Raises :class:`OutOfMemoryError` when no free block fits.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        rounded = align_up(size, self._alignment)
        reserved = rounded + self._gap
        for base in self._free_bases:
            block = self._free_sizes[base]
            if block >= reserved:
                self._take(base, reserved)
                self._reserved[base] = reserved
                extent = Extent(base, rounded)
                self._live[base] = extent
                self._live_bytes += rounded
                self._peak_bytes = max(self._peak_bytes, self._live_bytes)
                return extent
        raise OutOfMemoryError(
            f"cannot allocate {rounded} bytes in window of device "
            f"{self._window.device_id}"
        )

    def free(self, base: int) -> Extent:
        """Release the allocation whose *base* address is ``base``.

        Freeing an interior or unknown address raises
        :class:`InvalidFreeError` — the same class of bug a real allocator
        aborts on.
        """
        extent = self._live.pop(base, None)
        if extent is None:
            raise InvalidFreeError(f"{base:#x} is not a live allocation base")
        self._live_bytes -= extent.size
        self._release(extent.base, self._reserved.pop(base))
        return extent

    # -- free-list plumbing ---------------------------------------------

    def _take(self, base: int, size: int) -> None:
        block = self._free_sizes.pop(base)
        self._free_bases.remove(base)
        if block > size:
            insort(self._free_bases, base + size)
            self._free_sizes[base + size] = block - size

    def _release(self, base: int, size: int) -> None:
        insort(self._free_bases, base)
        self._free_sizes[base] = size
        self._coalesce_around(base)

    def _coalesce_around(self, base: int) -> None:
        i = self._free_bases.index(base)
        # Merge with successor first so the predecessor merge sees the result.
        if i + 1 < len(self._free_bases):
            nxt = self._free_bases[i + 1]
            if base + self._free_sizes[base] == nxt:
                self._free_sizes[base] += self._free_sizes.pop(nxt)
                del self._free_bases[i + 1]
        if i > 0:
            prev = self._free_bases[i - 1]
            if prev + self._free_sizes[prev] == base:
                self._free_sizes[prev] += self._free_sizes.pop(base)
                del self._free_bases[i]
