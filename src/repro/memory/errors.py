"""Exception taxonomy for the simulated machine.

Every error raised by the runtime or by an analysis tool derives from
:class:`ReproError`, so callers can catch the whole family with one clause.
The hierarchy mirrors the fault classes the paper's evaluation talks about
(Table III column 2): use of uninitialized memory, buffer overflow, use of
stale data, plus the runtime-level faults (bad frees, double maps, ...) that
the simulated OpenMP runtime itself can raise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class MemoryError_(ReproError):
    """Base class for address-space level faults."""


class OutOfMemoryError(MemoryError_):
    """The allocator could not satisfy a request."""


class InvalidFreeError(MemoryError_):
    """``free`` was called with an address that is not a live allocation base."""


class OutOfBoundsError(MemoryError_):
    """An access touched bytes outside any live allocation."""

    def __init__(self, address: int, size: int, message: str | None = None):
        self.address = address
        self.size = size
        super().__init__(
            message
            or f"access of {size} byte(s) at {address:#x} is outside any live allocation"
        )


class MisalignedAccessError(MemoryError_):
    """An access violated the alignment its caller promised."""


class RuntimeSemanticsError(ReproError):
    """Base class for misuse of the simulated OpenMP runtime API."""


class MappingError(RuntimeSemanticsError):
    """A map clause refers to storage that cannot be mapped (e.g. freed)."""


class NotMappedError(RuntimeSemanticsError):
    """A kernel touched a variable that has no corresponding variable (CV)."""


class DeviceError(RuntimeSemanticsError):
    """An operation referenced an unknown or unavailable device."""


class TransferError(DeviceError):
    """An OV↔CV transfer failed even after the runtime's retry budget."""


class InvariantViolation(ReproError):
    """An internal-consistency check (present table, detector state) failed.

    Raised only by explicit ``check_invariants`` calls; the runtime and
    detector themselves degrade gracefully instead of raising this.
    """


class TaskGraphError(RuntimeSemanticsError):
    """Malformed task dependence usage (e.g. waiting on a foreign task)."""


class ToolError(ReproError):
    """Base class for errors raised by analysis tools themselves."""


class ShadowEncodingError(ToolError):
    """A shadow word failed to round-trip through its packed encoding."""


class CertificationError(ToolError):
    """Theorem-1 certification was asked of an ineligible program."""
