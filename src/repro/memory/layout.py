"""Address-space layout of the simulated machine.

The simulated machine exposes one flat 64-bit address space carved into
fixed-size windows, one per device.  Window 0 belongs to the host; windows
1..n belong to accelerators.  Keeping every device's addresses disjoint means
a bare integer address identifies both the owning device and the offset
inside its window — exactly the property ARBALEST's interval tree relies on
to tell an original variable (OV, host window) from a corresponding variable
(CV, accelerator window).

The constants are deliberately generous: a 4 GiB window per device is far
more than any simulated workload allocates, so allocators never collide with
window boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Size of each device's address window, in bytes (4 GiB).
WINDOW_SIZE = 1 << 32

#: Base of the first (host) window.  Nonzero so that address 0 is never
#: valid, which catches uninitialised-pointer style mistakes in tests.
BASE_ADDRESS = 1 << 32

#: ARBALEST tracks state at 8-byte granularity (§IV.C of the paper).
GRANULE = 8


@dataclass(frozen=True)
class Window:
    """Address window ``[base, base + size)`` owned by one device."""

    device_id: int
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address + size)`` lies fully inside the window."""
        return self.base <= address and address + size <= self.end


def window_for_device(device_id: int) -> Window:
    """Return the address window assigned to ``device_id``.

    Device ids are small non-negative integers; the host is device 0.
    """
    if device_id < 0:
        raise ValueError(f"device id must be non-negative, got {device_id}")
    return Window(device_id, BASE_ADDRESS + device_id * WINDOW_SIZE, WINDOW_SIZE)


def device_of_address(address: int) -> int:
    """Recover the owning device id of an absolute address.

    Raises :class:`ValueError` for addresses below :data:`BASE_ADDRESS`,
    which can never be produced by any window.
    """
    if address < BASE_ADDRESS:
        raise ValueError(f"address {address:#x} precedes every device window")
    return (address - BASE_ADDRESS) // WINDOW_SIZE


def granules_in(address: int, size: int) -> range:
    """Indices of the 8-byte granules overlapped by ``[address, address+size)``.

    Granule indices are absolute (address // GRANULE) so that two views of
    the same storage always agree on granule identity.
    """
    if size <= 0:
        return range(0)
    first = address // GRANULE
    last = (address + size - 1) // GRANULE
    return range(first, last + 1)


def align_down(address: int, alignment: int = GRANULE) -> int:
    """Round ``address`` down to a multiple of ``alignment``."""
    return address - (address % alignment)


def align_up(address: int, alignment: int = GRANULE) -> int:
    """Round ``address`` up to a multiple of ``alignment``."""
    return -(-address // alignment) * alignment
