"""Clean DRACC benchmarks 35-48 and 52-56.

The second half of the clean set: data-access shapes (stencils, strides,
triangles), multi-kernel pipelines, multi-device pipelines, and degenerate
corners (empty kernels, length-1 arrays, deep region nesting).
"""

from __future__ import annotations

import numpy as np

from ..openmp import alloc, from_, release, to, tofrom
from ..openmp.runtime import TargetRuntime
from .common import N, checksum, init_vectors, vec_add_kernel
from .registry import dracc_benchmark


@dracc_benchmark(35, "Three-point stencil reading neighbors within the mapping.")
def dracc_035(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")

    def stencil(ctx):
        A, C = ctx["a"], ctx["c"]
        for i in range(1, N - 1):
            C[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0

    rt.target(stencil, maps=[to(a), tofrom(c)], name="stencil3")
    checksum(rt, c)


@dracc_benchmark(36, "Device-side copy between two mapped arrays.")
def dracc_036(rt: TargetRuntime) -> None:
    a, b = init_vectors(rt, "a", "b")
    rt.target(
        lambda ctx: [ctx["b"].write(i, ctx["a"][i]) for i in range(N)],
        maps=[to(a), tofrom(b)],
        name="copy",
    )
    checksum(rt, b)


@dracc_benchmark(37, "Kernel reads back its own writes within one region.")
def dracc_037(rt: TargetRuntime) -> None:
    (c,) = init_vectors(rt, "c")

    def read_own_writes(ctx):
        C = ctx["c"]
        for i in range(N):
            C[i] = float(i)
        acc = 0.0
        for i in range(N):
            acc += C[i]
        C[0] = acc

    rt.target(read_own_writes, maps=[tofrom(c)], name="self_consistent")
    checksum(rt, c)


@dracc_benchmark(
    38, "Input assumed externally initialized (init=), mapped read-only."
)
def dracc_038(rt: TargetRuntime) -> None:
    a = rt.array("a", N, init=np.linspace(0.0, 1.0, N))
    c = rt.array("c", N)
    c.fill(0.0)
    rt.target(
        lambda ctx: [ctx["c"].write(i, ctx["a"][i] ** 2) for i in range(N)],
        maps=[to(a), tofrom(c)],
        name="square",
    )
    checksum(rt, c)


@dracc_benchmark(39, "Triangular iteration space (prefix sums).")
def dracc_039(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")

    def prefix(ctx):
        A, C = ctx["a"], ctx["c"]
        for i in range(N):
            acc = 0.0
            for j in range(i + 1):
                acc += A[j]
            C[i] = acc

    rt.target(prefix, maps=[to(a), tofrom(c)], name="prefix")
    checksum(rt, c)


@dracc_benchmark(
    40, "Independent nowait kernels on disjoint arrays (no depend needed)."
)
def dracc_040(rt: TargetRuntime) -> None:
    a, b = init_vectors(rt, "a", "b")
    rt.target(
        lambda ctx: [ctx["a"].write(i, ctx["a"][i] * 2) for i in range(N)],
        maps=[tofrom(a)],
        nowait=True,
        name="scale_a",
    )
    rt.target(
        lambda ctx: [ctx["b"].write(i, ctx["b"][i] * 3) for i in range(N)],
        maps=[tofrom(b)],
        nowait=True,
        name="scale_b",
    )
    rt.taskwait()
    checksum(rt, a)
    checksum(rt, b)


@dracc_benchmark(41, "target update on a partial section only.")
def dracc_041(rt: TargetRuntime) -> None:
    (a,) = init_vectors(rt, "a")
    with rt.target_data([tofrom(a)]):
        a[0:8] = 42.0  # host refresh of the head
        rt.target_update(to=[(a, 0, 8)])
        rt.target(
            lambda ctx: [ctx["a"].write(i, ctx["a"][i] + 1) for i in range(N)],
            name="bump",
        )
    checksum(rt, a)


@dracc_benchmark(42, "Plain (non-declare-target) global array, mapped explicitly.")
def dracc_042(rt: TargetRuntime) -> None:
    g = rt.array("g", N, storage="global")
    c = rt.array("c", N)
    g.fill(1.5)  # globals still need explicit initialization before use
    c.fill(0.0)
    rt.target(
        lambda ctx: [ctx["c"].write(i, ctx["g"][i]) for i in range(N)],
        maps=[to(g), tofrom(c)],
        name="copy_global",
    )
    checksum(rt, c)


@dracc_benchmark(43, "Length-1 array ping-pong between host and device.")
def dracc_043(rt: TargetRuntime) -> None:
    x = rt.array("x", 1)
    x[0] = 1.0
    for _ in range(5):
        rt.target(lambda ctx: ctx["x"].write(0, ctx["x"][0] * 2), maps=[tofrom(x)])
        x.write(0, x.read(0) + 1)
    assert x[0] == 63.0  # ((1*2+1)*2+1)... five doubling+increment rounds


@dracc_benchmark(44, "Output of one region feeds the next through the host.")
def dracc_044(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target(vec_add_kernel, maps=[to(a), to(b), tofrom(c)], name="produce")
    mid = checksum(rt, c)
    d = rt.array("d", N)
    d.fill(mid / N)
    rt.target(
        lambda ctx: [ctx["d"].write(i, ctx["d"][i] + ctx["c"][i]) for i in range(N)],
        maps=[to(c), tofrom(d)],
        name="consume",
    )
    checksum(rt, d)


@dracc_benchmark(
    45, "map(alloc:) for an output fully written on the device, then from()."
)
def dracc_045(rt: TargetRuntime) -> None:
    (a,) = init_vectors(rt, "a")
    out = rt.array("out", N)
    rt.target_enter_data([to(a), alloc(out)])
    rt.target(
        lambda ctx: [ctx["out"].write(i, ctx["a"][i] * 7) for i in range(N)],
        name="produce_out",
    )
    rt.target_exit_data([release(a), from_(out)])
    checksum(rt, out)


@dracc_benchmark(46, "Strided device writes; untouched granules stay consistent.")
def dracc_046(rt: TargetRuntime) -> None:
    (a,) = init_vectors(rt, "a")

    def stride2(ctx):
        A = ctx["a"]
        for i in range(0, N, 2):
            A[i] = A[i] * 10.0

    rt.target(stride2, maps=[tofrom(a)], name="stride2")
    checksum(rt, a)


@dracc_benchmark(47, "Double buffering with depend chains across 4 iterations.")
def dracc_047(rt: TargetRuntime) -> None:
    cur, nxt = init_vectors(rt, "cur", "nxt")
    rt.target_enter_data([to(cur), to(nxt)])
    for it in range(4):
        src, dst = (cur, nxt) if it % 2 == 0 else (nxt, cur)

        def step(ctx, s=src.name, d=dst.name):
            S, D = ctx[s], ctx[d]
            for i in range(N):
                D[i] = S[i] + 1.0

        rt.target(step, nowait=True, depend_in=[src], depend_out=[dst], name=f"step{it}")
    rt.taskwait()
    rt.target_exit_data([from_(cur), release(nxt)])
    checksum(rt, cur)


@dracc_benchmark(48, "Three levels of nested target data regions (refcount 3).")
def dracc_048(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        with rt.target_data([to(a), to(c)]):
            with rt.target_data([to(c)]):
                rt.target(vec_add_kernel, name="vec_add")
    checksum(rt, c)


@dracc_benchmark(52, "Two-device pipeline: full remap moves data host->1->host->2.")
def dracc_052(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")
    rt.target(
        lambda ctx: [ctx["a"].write(i, ctx["a"][i] * 2) for i in range(N)],
        maps=[tofrom(a)],
        device=1,
        name="stage1",
    )
    rt.target(
        lambda ctx: [ctx["c"].write(i, ctx["a"][i] + 1) for i in range(N)],
        maps=[to(a), tofrom(c)],
        device=2,
        name="stage2",
    )
    checksum(rt, c)


@dracc_benchmark(53, "Alternating devices, each launch with complete mappings.")
def dracc_053(rt: TargetRuntime) -> None:
    (x,) = init_vectors(rt, "x")
    for it in range(4):
        rt.target(
            lambda ctx: [ctx["x"].write(i, ctx["x"][i] + 1) for i in range(N)],
            maps=[tofrom(x)],
            device=1 + (it % 2),
            name=f"hop{it}",
        )
    checksum(rt, x)


@dracc_benchmark(54, "Redundant but harmless target update calls.")
def dracc_054(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")
    with rt.target_data([to(a), tofrom(c)]):
        rt.target_update(to=[a])  # redundant: entry already copied
        rt.target(
            lambda ctx: [ctx["c"].write(i, ctx["a"][i]) for i in range(N)],
            name="copy",
        )
        rt.target_update(from_=[c])
        rt.target_update(from_=[c])  # twice: still fine
    checksum(rt, c)


@dracc_benchmark(55, "Degenerate: mapping without any kernel access.")
def dracc_055(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")
    with rt.target_data([tofrom(a), tofrom(c)]):
        rt.target(lambda ctx: None, name="empty")
    checksum(rt, a)
    checksum(rt, c)


@dracc_benchmark(56, "Stress: everything combined, correctly (the Fig-1 app done right).")
def dracc_056(rt: TargetRuntime) -> None:
    from .common import M, matvec_kernel

    a = rt.array("a", M, init=np.ones(M))
    b = rt.array("b", M * M)
    c = rt.array("c", M)
    b.fill(2.0)
    c.fill(0.0)
    rt.target_enter_data([to(b)])
    with rt.target_data([to(a), tofrom(c)]):
        rt.target(matvec_kernel, name="matvec")
        rt.target_update(from_=[c])
        expected = 2.0 * M
        assert c[0] == expected
    rt.target_exit_data([release(b)])
    checksum(rt, c)
