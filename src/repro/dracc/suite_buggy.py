"""The 16 buggy DRACC benchmarks of Table III.

Each program plants exactly one data mapping issue whose manifested memory
error matches its Table III row (UUM / BO / USD), through the root causes
§I enumerates: a) missing data movement, b) incorrect array section,
c) incorrect map-type, plus the reference-counting and declare-target
pitfalls the paper discusses.  Source positions are annotated so tool
reports point at the "C line" that contains the mistake or the read that
observes it.
"""

from __future__ import annotations

from ..openmp import alloc, delete, from_, release, to, tofrom
from ..openmp.runtime import TargetRuntime
from .common import M, N, checksum, init_vectors, matvec_kernel, vec_add_kernel
from .registry import dracc_benchmark

# ---------------------------------------------------------------------------
# UUM group: 22, 24, 49, 50, 51
# ---------------------------------------------------------------------------


@dracc_benchmark(
    22,
    "Fig. 1 of the paper: matrix b mapped with alloc instead of to; the "
    "kernel reads b's corresponding variable before anything wrote it.",
    tags=("target", "map-alloc", "wrong-map-type"),
)
def dracc_022(rt: TargetRuntime) -> None:
    a = rt.array("a", M)
    b = rt.array("b", M * M)
    c = rt.array("c", M)
    a.fill(1.0)
    b.fill(2.0)
    c.fill(0.0)
    with rt.at("DRACC_OMP_022.c", 16, function="main"):
        rt.target(
            matvec_kernel,
            maps=[to(a), alloc(b), tofrom(c)],  # alloc should be to
            name="matvec",
        )
    checksum(rt, c)


@dracc_benchmark(
    24,
    "Input vector mapped with from instead of to: the kernel consumes an "
    "uninitialized corresponding variable.",
    tags=("target", "map-from", "wrong-map-type"),
)
def dracc_024(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.at("DRACC_OMP_024.c", 21, function="main"):
        rt.target(
            vec_add_kernel,
            maps=[from_(a), to(b), tofrom(c)],  # from should be to
            name="vec_add",
        )
    checksum(rt, c)


@dracc_benchmark(
    49,
    "Unstructured mapping created with target enter data map(alloc:) where "
    "map(to:) was needed; the kernel reads garbage.",
    tags=("enter-data", "map-alloc", "wrong-map-type"),
)
def dracc_049(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.at("DRACC_OMP_049.c", 12, function="main"):
        rt.target_enter_data([alloc(a), to(b)])  # alloc should be to
    rt.target(vec_add_kernel, maps=[tofrom(c)], name="vec_add")
    rt.target_exit_data([release(a), release(b)])
    checksum(rt, c)


@dracc_benchmark(
    50,
    "Reference-counting pitfall: the array is already present from an "
    "earlier map(alloc:), so the later map(to:) transfers nothing — the "
    "kernel still reads uninitialized device memory.",
    tags=("enter-data", "refcount", "present-table"),
)
def dracc_050(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.at("DRACC_OMP_050.c", 10, function="main"):
        rt.target_enter_data([alloc(a)])  # creates the CV without data
    with rt.at("DRACC_OMP_050.c", 14, function="main"):
        # Looks correct, but ref_count(a) == 1: no memcpy happens.
        rt.target(vec_add_kernel, maps=[to(a), to(b), tofrom(c)], name="vec_add")
    rt.target_exit_data([release(a)])
    checksum(rt, c)


@dracc_benchmark(
    51,
    "Delete-then-remap: target exit data map(delete:) destroys the device "
    "copy; the re-mapping with alloc produces a fresh, uninitialized CV.",
    tags=("exit-data", "map-delete", "remap"),
)
def dracc_051(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a)])
    with rt.at("DRACC_OMP_051.c", 13, function="main"):
        rt.target_exit_data([delete(a)])  # should have been kept present
    with rt.at("DRACC_OMP_051.c", 17, function="main"):
        rt.target(
            vec_add_kernel, maps=[alloc(a), to(b), tofrom(c)], name="vec_add"
        )
    rt.target_exit_data([release(a)])
    checksum(rt, c)


# ---------------------------------------------------------------------------
# BO group: 23, 25, 28, 29, 30, 31
# ---------------------------------------------------------------------------


@dracc_benchmark(
    23,
    "Array section maps only the first half of the input; the kernel loops "
    "over the whole array and reads past the corresponding variable.",
    tags=("target", "array-section", "overflow"),
)
def dracc_023(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.at("DRACC_OMP_023.c", 18, function="main"):
        rt.target(
            vec_add_kernel,
            maps=[to(a, 0, N // 2), to(b), tofrom(c)],  # half of a only
            name="vec_add",
        )
    checksum(rt, c)


@dracc_benchmark(
    25,
    "Wrong section start: the upper half is mapped but the kernel indexes "
    "the lower half, under-running the corresponding variable.",
    tags=("target", "array-section", "underflow"),
)
def dracc_025(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")

    def lower_half(ctx):
        A, B, C = ctx["a"], ctx["b"], ctx["c"]
        for i in range(N // 2):
            C[i] = A[i] + B[i]  # a mapped as [N/2:N): these underflow

    with rt.at("DRACC_OMP_025.c", 19, function="main"):
        rt.target(
            lower_half,
            maps=[to(a, N // 2, N // 2), to(b), tofrom(c)],
            name="vec_add_lower",
        )
    checksum(rt, c)


@dracc_benchmark(
    28,
    "Output section too small: the kernel writes the full vector but only "
    "half of it was mapped with from, overflowing on the write side.",
    tags=("target", "array-section", "write-overflow"),
)
def dracc_028(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.at("DRACC_OMP_028.c", 18, function="main"):
        rt.target(
            vec_add_kernel,
            maps=[to(a), to(b), tofrom(c, 0, N // 2)],  # half of c only
            name="vec_add",
        )
    checksum(rt, c)


@dracc_benchmark(
    29,
    "2-D mapping misses the last matrix row; the mat-vec kernel's "
    "b[j + i*M] runs into the unmapped tail.",
    tags=("target", "2d", "array-section"),
)
def dracc_029(rt: TargetRuntime) -> None:
    a = rt.array("a", M)
    b = rt.array("b", M * M)
    c = rt.array("c", M)
    a.fill(1.0)
    b.fill(2.0)
    c.fill(0.0)
    with rt.at("DRACC_OMP_029.c", 15, function="main"):
        rt.target(
            matvec_kernel,
            maps=[to(a), to(b, 0, M * M - M), tofrom(c)],  # last row missing
            name="matvec",
        )
    checksum(rt, c)


@dracc_benchmark(
    30,
    "Classic off-by-one: the kernel loop runs i <= N, reading one element "
    "past the end of the mapped array.",
    tags=("target", "off-by-one"),
)
def dracc_030(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")

    def off_by_one(ctx):
        A, C = ctx["a"], ctx["c"]
        for i in range(N + 1):  # i <= N in the C original
            C[min(i, N - 1)] = A[i]

    with rt.at("DRACC_OMP_030.c", 17, function="main"):
        rt.target(off_by_one, maps=[to(a), tofrom(c)], name="copy_off_by_one")
    checksum(rt, c)


@dracc_benchmark(
    31,
    "Size confusion between two arrays: the kernel assumes the input has N "
    "elements but it was declared (and mapped) with N/2.",
    tags=("target", "declared-length"),
)
def dracc_031(rt: TargetRuntime) -> None:
    a = rt.array("a", N // 2)
    a.fill(1.0)
    c = rt.array("c", N)
    c.fill(0.0)

    def copy_n(ctx):
        A, C = ctx["a"], ctx["c"]
        for i in range(N):  # a only has N/2 elements
            C[i] = A[i]

    with rt.at("DRACC_OMP_031.c", 16, function="main"):
        rt.target(copy_n, maps=[to(a), tofrom(c)], name="copy_n")
    checksum(rt, c)


# ---------------------------------------------------------------------------
# USD group: 26, 27, 32, 33, 34
# ---------------------------------------------------------------------------


@dracc_benchmark(
    26,
    "Fig. 2 lines 1-5: map(to:) where tofrom was needed; the host read "
    "after the region observes the pre-kernel value.",
    tags=("target", "map-to", "wrong-map-type"),
)
def dracc_026(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.at("DRACC_OMP_026.c", 14, function="main"):
        rt.target(
            vec_add_kernel,
            maps=[to(a), to(b), to(c)],  # c should be tofrom
            name="vec_add",
        )
    checksum(rt, c)


@dracc_benchmark(
    27,
    "Unstructured exit with map(release:) where map(from:) was needed: the "
    "kernel's result is dropped with the corresponding variable.",
    tags=("exit-data", "map-release", "wrong-map-type"),
)
def dracc_027(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a), to(b), to(c)])
    rt.target(vec_add_kernel, name="vec_add")
    with rt.at("DRACC_OMP_027.c", 24, function="main"):
        rt.target_exit_data([release(a), release(b), release(c)])  # c: from!
    checksum(rt, c)


@dracc_benchmark(
    32,
    "Missing target update to(): the host refreshes the input between two "
    "kernels, but the device keeps computing on the entry-time snapshot.",
    tags=("target-data", "missing-update", "device-stale-read"),
)
def dracc_032(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        rt.target(vec_add_kernel, name="vec_add")
        with rt.at("DRACC_OMP_032.c", 19, function="main"):
            a.fill(10.0)  # host-side refresh; update to(a) is missing
        with rt.at("DRACC_OMP_032.c", 22, function="main"):
            rt.target(vec_add_kernel, name="vec_add_again")
    checksum(rt, c)


@dracc_benchmark(
    33,
    "target update with the wrong direction: update to() re-pushes the "
    "stale host copy over the kernel's result, destroying the last write.",
    tags=("target-data", "update-direction"),
)
def dracc_033(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        rt.target(vec_add_kernel, name="vec_add")
        with rt.at("DRACC_OMP_033.c", 20, function="main"):
            rt.target_update(to=[c])  # should be from_=[c]
    checksum(rt, c)


@dracc_benchmark(
    34,
    "declare target global: the device image's copy of the coefficient "
    "table is never refreshed with target update to(); the kernel reads "
    "memory no one initialized on the device (a UUM inside the compute "
    "kernel, as §VI.C describes — only a mapping-aware tool can see it).",
    tags=("declare-target", "global", "missing-update"),
)
def dracc_034(rt: TargetRuntime) -> None:
    coeff = rt.array("coeff", N, storage="global", declare_target=True)
    a, c = init_vectors(rt, "a", "c")
    with rt.at("DRACC_OMP_034.c", 8, function="init"):
        coeff.fill(0.5)  # host copy only; update to(coeff) is missing

    def apply_coeff(ctx):
        A, C, K = ctx["a"], ctx["c"], ctx["coeff"]
        for i in range(N):
            C[i] = A[i] * K[i]

    with rt.at("DRACC_OMP_034.c", 19, function="main"):
        rt.target(apply_coeff, maps=[to(a), tofrom(c)], name="apply_coeff")
    checksum(rt, c)
