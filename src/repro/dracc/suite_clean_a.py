"""Clean DRACC benchmarks 1-21: the structured/unstructured mapping matrix.

Forty of the 56 DRACC benchmarks carry no data mapping issue; Table III's
footnote is that *no tool reports anything on them* (zero false positives).
This first half covers every map-type used correctly, sections, updates in
both directions, asynchronous kernels with proper synchronization, and the
reference-counting idioms whose *incorrect* twins live in suite_buggy.
"""

from __future__ import annotations

import numpy as np

from ..openmp import alloc, delete, from_, release, to, tofrom
from ..openmp.runtime import TargetRuntime
from .common import M, N, checksum, init_vectors, matvec_kernel, vec_add_kernel, vec_scale_kernel
from .registry import dracc_benchmark


@dracc_benchmark(1, "Baseline vector addition with map(tofrom:) everywhere.")
def dracc_001(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target(vec_add_kernel, maps=[tofrom(a), tofrom(b), tofrom(c)], name="vec_add")
    checksum(rt, c)


@dracc_benchmark(2, "Structured target data region enclosing two kernels.")
def dracc_002(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        rt.target(vec_add_kernel, name="vec_add")
        rt.target(lambda ctx: vec_scale_kernel(ctx), maps=[tofrom(a)], name="scale_a")
    checksum(rt, c)


@dracc_benchmark(3, "Unstructured enter/exit data with to on entry, from on exit.")
def dracc_003(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a), to(b), to(c)])
    rt.target(vec_add_kernel, name="vec_add")
    rt.target_exit_data([release(a), release(b), from_(c)])
    checksum(rt, c)


@dracc_benchmark(4, "Directional maps: to for inputs, tofrom for the output.")
def dracc_004(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target(vec_add_kernel, maps=[to(a), to(b), tofrom(c)], name="vec_add")
    checksum(rt, c)


@dracc_benchmark(
    5, "Device-only scratch via map(alloc:), fully written before it is read."
)
def dracc_005(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")
    scratch = rt.array("scratch", N)

    def staged(ctx):
        A, C, S = ctx["a"], ctx["c"], ctx["scratch"]
        for i in range(N):
            S[i] = A[i] * 2.0  # define the scratch first
        for i in range(N):
            C[i] = S[i] + 1.0

    rt.target(staged, maps=[to(a), tofrom(c), alloc(scratch)], name="staged")
    checksum(rt, c)


@dracc_benchmark(6, "Partial array section, used strictly within its bounds.")
def dracc_006(rt: TargetRuntime) -> None:
    (a,) = init_vectors(rt, "a")

    def scale_window(ctx):
        A = ctx["a"]
        lo, hi = A.mapped_range
        for i in range(lo, hi):
            A[i] = A[i] * 3.0

    rt.target(scale_window, maps=[tofrom(a, 16, 32)], name="scale_window")
    checksum(rt, a)


@dracc_benchmark(7, "Fig. 1 corrected: the matrix is mapped with to, not alloc.")
def dracc_007(rt: TargetRuntime) -> None:
    a = rt.array("a", M)
    b = rt.array("b", M * M)
    c = rt.array("c", M)
    a.fill(1.0)
    b.fill(2.0)
    c.fill(0.0)
    rt.target(matvec_kernel, maps=[to(a), to(b), tofrom(c)], name="matvec")
    checksum(rt, c)


@dracc_benchmark(8, "target update from() makes a mid-region result visible.")
def dracc_008(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        rt.target(vec_add_kernel, name="vec_add")
        rt.target_update(from_=[c])
        checksum(rt, c, line=40)  # host read inside the region: legal now
    checksum(rt, c)


@dracc_benchmark(9, "target update to() republishes a host-side refresh.")
def dracc_009(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        rt.target(vec_add_kernel, name="vec_add")
        a.fill(10.0)
        rt.target_update(to=[a])  # the update benchmark 032 forgot
        rt.target(vec_add_kernel, name="vec_add_again")
    checksum(rt, c)


@dracc_benchmark(10, "nowait kernel properly joined with taskwait before use.")
def dracc_010(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    with rt.target_data([to(a), to(b), tofrom(c)]):
        rt.target(vec_add_kernel, nowait=True, name="vec_add")
        rt.taskwait()
    checksum(rt, c)


@dracc_benchmark(11, "Two nowait kernels ordered by a depend chain.")
def dracc_011(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a), to(b), to(c)])
    rt.target(vec_add_kernel, nowait=True, depend_out=[c], name="produce")
    rt.target(
        lambda ctx: [ctx["c"].write(i, ctx["c"][i] * 2.0) for i in range(N)],
        nowait=True,
        depend_in=[c],
        depend_out=[c],
        name="consume",
    )
    rt.taskwait()
    rt.target_exit_data([release(a), release(b), from_(c)])
    checksum(rt, c)


@dracc_benchmark(12, "Several arrays across several kernels, all correctly mapped.")
def dracc_012(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    d = rt.array("d", N)
    d.fill(0.0)
    rt.target(vec_add_kernel, maps=[to(a), to(b), tofrom(c)], name="add1")
    rt.target(
        lambda ctx: [ctx["d"].write(i, ctx["c"][i] - 1.0) for i in range(N)],
        maps=[to(c), tofrom(d)],
        name="sub1",
    )
    checksum(rt, d)


@dracc_benchmark(
    13, "Reference counting: nested target data + target reuse one CV safely."
)
def dracc_013(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a)])  # rc(a) = 1
    with rt.target_data([to(a), to(b), tofrom(c)]):  # rc(a) = 2
        rt.target(vec_add_kernel, maps=[to(a)], name="vec_add")  # rc(a) = 3
    rt.target_exit_data([release(a)])  # rc(a) = 0: gone
    checksum(rt, c)


@dracc_benchmark(
    14, "map(release:) used correctly: the device result flows out via from(c)."
)
def dracc_014(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a), to(b), to(c)])
    rt.target(vec_add_kernel, name="vec_add")
    rt.target_exit_data([from_(c), release(a), release(b)])
    checksum(rt, c)


@dracc_benchmark(
    15, "map(delete:) used correctly: forced unmap after the data is retrieved."
)
def dracc_015(rt: TargetRuntime) -> None:
    a, b, c = init_vectors(rt, "a", "b", "c")
    rt.target_enter_data([to(a), to(b), to(c)])
    rt.target(vec_add_kernel, name="vec_add")
    rt.target_update(from_=[c])  # retrieve first...
    rt.target_exit_data([delete(a), delete(b), delete(c)])  # ...then delete
    checksum(rt, c)


@dracc_benchmark(16, "declare target global, refreshed in both directions.")
def dracc_016(rt: TargetRuntime) -> None:
    coeff = rt.array("coeff", N, storage="global", declare_target=True)
    a, c = init_vectors(rt, "a", "c")
    coeff.fill(0.5)
    rt.target_update(to=[coeff])  # benchmark 034 without its bug

    def apply_coeff(ctx):
        A, C, K = ctx["a"], ctx["c"], ctx["coeff"]
        for i in range(N):
            C[i] = A[i] * K[i]

    rt.target(apply_coeff, maps=[to(a), tofrom(c)], name="apply_coeff")
    checksum(rt, c)


@dracc_benchmark(17, "teams/parallel-for inside the kernel, iterations disjoint.")
def dracc_017(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")

    def par(ctx):
        A, C = ctx["a"], ctx["c"]
        ctx.parallel_for(N, lambda i: C.write(i, A[i] * 2.0), num_threads=4)

    rt.target(par, maps=[to(a), tofrom(c)], name="parallel_scale")
    checksum(rt, c)


@dracc_benchmark(18, "Device-side reduction delivered through a from map.")
def dracc_018(rt: TargetRuntime) -> None:
    (a,) = init_vectors(rt, "a")
    total = rt.array("total", 1)

    def reduce(ctx):
        A, T = ctx["a"], ctx["total"]
        acc = 0.0
        for i in range(N):
            acc += A[i]
        T[0] = acc

    rt.target(reduce, maps=[to(a), from_(total)], name="reduce")
    assert total[0] == N * 1.0


@dracc_benchmark(19, "Integer arrays: the mapping machinery is dtype-agnostic.")
def dracc_019(rt: TargetRuntime) -> None:
    a = rt.array("a", N, "i4")
    b = rt.array("b", N, "i4")
    c = rt.array("c", N, "i4")
    a.fill(1)
    b.fill(2)
    c.fill(0)
    rt.target(vec_add_kernel, maps=[to(a), to(b), tofrom(c)], name="ivec_add")
    checksum(rt, c)


@dracc_benchmark(
    20, "Iterative solver shape: persistent mapping, per-iteration updates."
)
def dracc_020(rt: TargetRuntime) -> None:
    a, c = init_vectors(rt, "a", "c")
    rt.target_enter_data([to(a), to(c)])
    for _ in range(4):
        rt.target(
            lambda ctx: [ctx["c"].write(i, ctx["c"][i] + ctx["a"][i]) for i in range(N)],
            name="accumulate",
        )
    rt.target_exit_data([release(a), from_(c)])
    checksum(rt, c)


@dracc_benchmark(21, "Two disjoint sections of one array mapped back to back.")
def dracc_021(rt: TargetRuntime) -> None:
    (a,) = init_vectors(rt, "a")

    def scale_section(ctx):
        A = ctx["a"]
        lo, hi = A.mapped_range
        for i in range(lo, hi):
            A[i] = A[i] + 1.0

    rt.target(scale_section, maps=[tofrom(a, 0, N // 2)], name="first_half")
    rt.target(scale_section, maps=[tofrom(a, N // 2, N // 2)], name="second_half")
    checksum(rt, a)
