"""DRACC benchmark suite, re-created on the simulated runtime (§VI.C)."""

from .registry import (
    EXPECTED_EFFECT,
    TABLE3_BO,
    TABLE3_BUGGY,
    TABLE3_USD,
    TABLE3_UUM,
    DraccBenchmark,
    Effect,
    all_benchmarks,
    buggy_benchmarks,
    clean_benchmarks,
    get,
)

__all__ = [
    "DraccBenchmark",
    "Effect",
    "all_benchmarks",
    "buggy_benchmarks",
    "clean_benchmarks",
    "get",
    "EXPECTED_EFFECT",
    "TABLE3_UUM",
    "TABLE3_BO",
    "TABLE3_USD",
    "TABLE3_BUGGY",
]
