"""DRACC benchmark registry.

DRACC (DataRaceOnAccelerator, Schmitz et al. 2019) is the micro-benchmark
suite the paper's precision evaluation runs on: 56 OpenMP target-offloading
programs, 16 of which contain a known data mapping issue whose manifested
memory error Table III classifies as UUM, BO, or USD.  The upstream suite
is C code compiled with Clang; this module re-creates each benchmark as a
program over the simulated runtime, keeping the Table III contract exact:

* buggy ids and effects: UUM = {22, 24, 49, 50, 51}, BO = {23, 25, 28, 29,
  30, 31}, USD = {26, 27, 32, 33, 34};
* the remaining 40 benchmarks are free of data mapping issues (and of
  races), and no tool may report anything on them.

Benchmarks register themselves via the :func:`dracc_benchmark` decorator;
`repro.dracc.suite_*` modules hold the program bodies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..openmp.runtime import TargetRuntime


class Effect(enum.Enum):
    """The memory error a benchmark's data mapping issue manifests as."""

    UUM = "use of uninitialized memory"
    BO = "buffer overflow"
    USD = "use of stale data"


#: Table III, column by column.
TABLE3_UUM = (22, 24, 49, 50, 51)
TABLE3_BO = (23, 25, 28, 29, 30, 31)
TABLE3_USD = (26, 27, 32, 33, 34)
TABLE3_BUGGY = tuple(sorted(TABLE3_UUM + TABLE3_BO + TABLE3_USD))

EXPECTED_EFFECT: dict[int, Effect] = {
    **{n: Effect.UUM for n in TABLE3_UUM},
    **{n: Effect.BO for n in TABLE3_BO},
    **{n: Effect.USD for n in TABLE3_USD},
}


@dataclass(frozen=True)
class DraccBenchmark:
    """One benchmark: a program over a fresh runtime, plus metadata."""

    number: int
    name: str
    description: str
    expected_effect: Effect | None
    program: Callable[[TargetRuntime], None]
    #: Free-form construct tags ("nowait", "enter-data", ...), for filtering.
    tags: tuple[str, ...] = ()

    @property
    def is_buggy(self) -> bool:
        return self.expected_effect is not None

    def run(self, rt: TargetRuntime) -> None:
        """Execute the benchmark body, then the implicit final sync."""
        self.program(rt)
        rt.finalize()

    def __repr__(self) -> str:
        effect = self.expected_effect.name if self.expected_effect else "clean"
        return f"<DRACC_OMP_{self.number:03d} {effect}>"


_REGISTRY: dict[int, DraccBenchmark] = {}


def dracc_benchmark(
    number: int, description: str, *, tags: tuple[str, ...] = ()
) -> Callable:
    """Register a benchmark body under its DRACC number.

    The expected effect comes from the Table III constants, never from the
    call site — the registry cannot drift from the paper's table.
    """

    def decorate(fn: Callable[[TargetRuntime], None]):
        if number in _REGISTRY:
            raise ValueError(f"DRACC_OMP_{number:03d} registered twice")
        if not 1 <= number <= 56:
            raise ValueError(f"DRACC numbers span 1..56, got {number}")
        _REGISTRY[number] = DraccBenchmark(
            number=number,
            name=f"DRACC_OMP_{number:03d}",
            description=description,
            expected_effect=EXPECTED_EFFECT.get(number),
            program=fn,
            tags=tags,
        )
        return fn

    return decorate


def _ensure_loaded() -> None:
    from . import suite_clean_a, suite_clean_b, suite_buggy  # noqa: F401


def get(number: int) -> DraccBenchmark:
    """The benchmark registered as ``DRACC_OMP_<number>``."""
    _ensure_loaded()
    return _REGISTRY[number]


def all_benchmarks() -> tuple[DraccBenchmark, ...]:
    """All 56 benchmarks, ordered by number."""
    _ensure_loaded()
    return tuple(_REGISTRY[n] for n in sorted(_REGISTRY))


def buggy_benchmarks() -> tuple[DraccBenchmark, ...]:
    """The 16 Table-III benchmarks with a known data mapping issue."""
    return tuple(b for b in all_benchmarks() if b.is_buggy)


def clean_benchmarks() -> tuple[DraccBenchmark, ...]:
    """The 40 issue-free benchmarks (no tool may report on them)."""
    return tuple(b for b in all_benchmarks() if not b.is_buggy)
