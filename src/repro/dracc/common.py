"""Shared kernels and array setups for the DRACC benchmarks.

The upstream suite builds every benchmark from the same few numerical
skeletons — vector addition, matrix-vector multiplication, reductions —
varying only the data-mapping constructs around them.  These helpers keep
our benchmark bodies at the same altitude as the C originals: the program
text shows the *mapping* decisions, not the arithmetic.

Sizes are deliberately small (``N = 64``): DRACC is a precision suite, not
a performance suite (§VI.E: "DRACC benchmarks are not designed for
performance evaluation"), and every one of the 56 programs runs under five
tools in the Table III harness.
"""

from __future__ import annotations

from ..openmp.arrays import HostArray, KernelContext
from ..openmp.runtime import TargetRuntime

#: Vector length used throughout the suite.
N = 64
#: Matrix side for the mat-vec benchmarks (the Fig-1 shape, scaled down).
M = 16


def init_vectors(rt: TargetRuntime, *names: str, length: int = N) -> list[HostArray]:
    """Allocate and initialize one vector per name (host-side writes)."""
    arrays = []
    for i, name in enumerate(names):
        arr = rt.array(name, length)
        arr.fill(float(i + 1))
        arrays.append(arr)
    return arrays


def vec_add_kernel(ctx: KernelContext) -> None:
    """c[i] = a[i] + b[i] over the full declared length."""
    a, b, c = ctx["a"], ctx["b"], ctx["c"]
    for i in range(len(c)):
        c[i] = a[i] + b[i]


def vec_scale_kernel(ctx: KernelContext) -> None:
    """a[i] *= 2."""
    a = ctx["a"]
    for i in range(len(a)):
        a[i] = a[i] * 2.0


def matvec_kernel(ctx: KernelContext) -> None:
    """c[i] += b[i*M + j] * a[j] — the Fig-1 kernel, over M x M."""
    a, b, c = ctx["a"], ctx["b"], ctx["c"]
    for i in range(M):
        acc = c[i]
        for j in range(M):
            acc = acc + b[j + i * M] * a[j]
        c[i] = acc


def checksum(rt: TargetRuntime, arr: HostArray, *, line: int = 90) -> float:
    """The host-side 'use' of results every DRACC benchmark ends with.

    Reading the output is what turns a latent stale/uninitialized value
    into an observable anomaly; annotated as the benchmark's check loop.
    """
    total = 0.0
    with rt.at(f"{arr.name}_check.c", line, function="check"):
        for i in range(arr.length):
            total += arr[i]
    return total
