"""503.postencil: 7-point 3-D stencil, with the SPEC ACCEL 1.2 bug.

The benchmark iterates a 7-point Jacobi stencil, double-buffered between
``A0`` and ``Anext``.  The data region maps the result buffer ``A0`` with
``tofrom`` and the scratch ``Anext`` with ``to`` — correct for an even
iteration count.  Version 1.2's bug (Fig. 6 of the paper): after every
kernel launch the *host* swaps the two pointers, so after an **odd** number
of iterations the final result physically lives in the scratch buffer's
corresponding variable, which is never copied back.  The host's output loop
then reads stale memory — the "data mapping issue (stale access)" ARBALEST
reports at the output line (Fig. 7).

``run_postencil`` reproduces both behaviours: ``buggy=True`` performs the
host-side pointer swap exactly like v1.2; ``buggy=False`` adds the
``target update from`` that the SPEC fix effectively introduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..openmp.arrays import HostArray, KernelContext
from ..openmp.runtime import TargetRuntime
from ..openmp import to, tofrom


@dataclass(frozen=True)
class StencilShape:
    nx: int
    ny: int
    nz: int
    iters: int

    @property
    def n(self) -> int:
        return self.nx * self.ny * self.nz


#: Workload presets: 'test' for unit tests, 'ref' for the overhead figures.
#: 'large' runs the element-wise kernel twins (one logical device thread
#: per point, scalar loads/stores) — the columnar engine's target profile.
SHAPES = {
    "test": StencilShape(8, 8, 8, 3),
    "train": StencilShape(12, 12, 12, 5),
    "ref": StencilShape(16, 16, 16, 7),
    # Odd iteration count: the v1.2 pointer-swap bug only manifests after
    # an odd number of swaps (see run_postencil), and the large preset must
    # keep exposing it.
    "large": StencilShape(22, 22, 22, 5),
}

C0 = 0.5
C1 = 1.0 / 12.0


def _stencil_step(src: np.ndarray, shape: StencilShape) -> np.ndarray:
    """One Jacobi step on the flattened field; boundaries carried over."""
    a = src.reshape(shape.nx, shape.ny, shape.nz)
    out = a.copy()
    out[1:-1, 1:-1, 1:-1] = (
        C1
        * (
            a[:-2, 1:-1, 1:-1]
            + a[2:, 1:-1, 1:-1]
            + a[1:-1, :-2, 1:-1]
            + a[1:-1, 2:, 1:-1]
            + a[1:-1, 1:-1, :-2]
            + a[1:-1, 1:-1, 2:]
        )
        - C0 * a[1:-1, 1:-1, 1:-1]
    )
    return out.ravel()


def make_stencil_kernel(src_name: str, dst_name: str, shape: StencilShape):
    """The compute kernel for one iteration: dst = stencil(src)."""

    def cpu_stencil(ctx: KernelContext) -> None:
        src = ctx[src_name]
        dst = ctx[dst_name]
        field = np.asarray(src[0 : shape.n])
        dst[0 : shape.n] = _stencil_step(field, shape)

    cpu_stencil.__name__ = f"cpu_stencil_{src_name}_to_{dst_name}"
    return cpu_stencil


def make_stencil_point_kernel(src_name: str, dst_name: str, shape: StencilShape):
    """Element-wise twin of :func:`make_stencil_kernel` ('large' preset).

    One logical device thread per interior point, seven scalar loads and
    one scalar store each — the access profile compiled stencil kernels
    actually have, and the one the columnar engine batches.  Boundary
    cells are identical in both buffers (Jacobi carries them unchanged),
    so updating the interior alone matches the bulk kernel's result.
    """
    syz = shape.ny * shape.nz
    nz = shape.nz
    interior = [
        (ix * shape.ny + iy) * nz + iz
        for ix in range(1, shape.nx - 1)
        for iy in range(1, shape.ny - 1)
        for iz in range(1, shape.nz - 1)
    ]

    def cpu_stencil_points(ctx: KernelContext) -> None:
        src = ctx[src_name]
        dst = ctx[dst_name]

        def body(k: int) -> None:
            i = interior[k]
            dst[i] = (
                C1
                * (
                    src[i - syz]
                    + src[i + syz]
                    + src[i - nz]
                    + src[i + nz]
                    + src[i - 1]
                    + src[i + 1]
                )
                - C0 * src[i]
            )

        ctx.parallel_for(len(interior), body)

    cpu_stencil_points.__name__ = f"cpu_stencil_points_{src_name}_to_{dst_name}"
    return cpu_stencil_points


def initial_field(shape: StencilShape) -> np.ndarray:
    """The heat-source initial condition (deterministic)."""
    field = np.zeros(shape.n)
    field[:: shape.nz] = 1.0  # a hot plane
    # Point source at the grid centre (an interior cell, so it diffuses).
    centre = (
        (shape.nx // 2) * shape.ny * shape.nz
        + (shape.ny // 2) * shape.nz
        + shape.nz // 2
    )
    field[centre] = 100.0
    return field


def run_postencil(
    rt: TargetRuntime,
    preset: str = "test",
    *,
    buggy: bool = False,
) -> HostArray:
    """Run 503.postencil; returns the array the host believes holds the result.

    With ``buggy=True`` and an odd iteration count the returned array's
    host storage is stale — reading it is the Fig-7 anomaly.
    """
    shape = SHAPES[preset]
    with rt.at("main.c", 127, 16, function="main"):
        a0 = rt.array("A0", shape.n)
        anext = rt.array("Anext", shape.n)
        a0[0 : shape.n] = initial_field(shape)
        anext[0 : shape.n] = initial_field(shape)

    kernel_factory = (
        make_stencil_point_kernel if preset == "large" else make_stencil_kernel
    )
    src, dst = a0, anext
    with rt.target_data([tofrom(a0), to(anext)]):
        for _t in range(shape.iters):
            with rt.at("main.c", 137, 7, function="main"):
                rt.target(
                    kernel_factory(src.name, dst.name, shape),
                    name="cpu_stencil",
                )
            # v1.2: the HOST swaps its pointers; the device data
            # environment knows nothing about it (Fig. 6, line ~139).
            src, dst = dst, src
        if not buggy:
            # The fix: explicitly retrieve the buffer that actually holds
            # the final result before leaving the region.
            rt.target_update(from_=[src])
    # After the loop the host's "A0" pointer is `src`.
    return src


def output_checksum(rt: TargetRuntime, result: HostArray) -> float:
    """The output loop of main.c (line 145 in Fig. 7): reads the result."""
    total = 0.0
    with rt.at("main.c", 145, 5, function="main"):
        values = result[0 : result.length]
    total = float(np.sum(values))
    return total
