"""514.pomriq: MRI Q-matrix computation.

The kernel computes, for every voxel ``x``, a sum over k-space samples of
``phi(k) * {cos, sin}(2π k·x)`` — a compute-dense, transfer-light workload:
inputs go to the device once, one big kernel runs, two result vectors come
back.  That profile (little data-op traffic, heavy access traffic) is why
the sanitizer-style tools do comparatively well on it in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..openmp import from_, to
from ..openmp.arrays import KernelContext
from ..openmp.runtime import TargetRuntime


@dataclass(frozen=True)
class MriqShape:
    num_k: int
    num_x: int
    #: voxels processed per kernel launch (the original tiles too).
    tile: int


SHAPES = {
    "test": MriqShape(64, 64, 32),
    "train": MriqShape(128, 128, 64),
    "ref": MriqShape(256, 256, 64),
    "large": MriqShape(32, 2048, 512),
}


def _sample_inputs(shape: MriqShape) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(514)
    return {
        "kx": rng.uniform(-1, 1, shape.num_k),
        "ky": rng.uniform(-1, 1, shape.num_k),
        "kz": rng.uniform(-1, 1, shape.num_k),
        "x": rng.uniform(-0.5, 0.5, shape.num_x),
        "y": rng.uniform(-0.5, 0.5, shape.num_x),
        "z": rng.uniform(-0.5, 0.5, shape.num_x),
        "phi_r": rng.uniform(0, 1, shape.num_k),
        "phi_i": rng.uniform(0, 1, shape.num_k),
    }


def make_q_kernel(shape: MriqShape, lo: int, hi: int):
    """Compute Q for voxels [lo, hi)."""

    def compute_q(ctx: KernelContext) -> None:
        kx = np.asarray(ctx["kx"][0 : shape.num_k])
        ky = np.asarray(ctx["ky"][0 : shape.num_k])
        kz = np.asarray(ctx["kz"][0 : shape.num_k])
        phi = np.asarray(ctx["phi_r"][0 : shape.num_k]) ** 2 + np.asarray(
            ctx["phi_i"][0 : shape.num_k]
        ) ** 2
        x = np.asarray(ctx["x"][lo:hi])
        y = np.asarray(ctx["y"][lo:hi])
        z = np.asarray(ctx["z"][lo:hi])
        angles = 2 * np.pi * (
            np.outer(x, kx) + np.outer(y, ky) + np.outer(z, kz)
        )
        ctx["q_r"][lo:hi] = (phi * np.cos(angles)).sum(axis=1)
        ctx["q_i"][lo:hi] = (phi * np.sin(angles)).sum(axis=1)

    compute_q.__name__ = f"ComputeQ_{lo}_{hi}"
    return compute_q


def make_q_point_kernel(shape: MriqShape, lo: int, hi: int):
    """Element-wise twin for the 'large' preset: one thread per voxel.

    The k-space sample vectors are read once in bulk (they are kernel-wide
    constants); each voxel then performs three scalar coordinate loads and
    two scalar result stores — the per-thread access pattern of the
    compiled kernel.
    """

    def compute_q_points(ctx: KernelContext) -> None:
        kx = np.asarray(ctx["kx"][0 : shape.num_k])
        ky = np.asarray(ctx["ky"][0 : shape.num_k])
        kz = np.asarray(ctx["kz"][0 : shape.num_k])
        phi = np.asarray(ctx["phi_r"][0 : shape.num_k]) ** 2 + np.asarray(
            ctx["phi_i"][0 : shape.num_k]
        ) ** 2
        xa, ya, za = ctx["x"], ctx["y"], ctx["z"]
        q_r, q_i = ctx["q_r"], ctx["q_i"]

        def body(j: int) -> None:
            v = lo + j
            angles = 2 * np.pi * (xa[v] * kx + ya[v] * ky + za[v] * kz)
            q_r[v] = float((phi * np.cos(angles)).sum())
            q_i[v] = float((phi * np.sin(angles)).sum())

        ctx.parallel_for(hi - lo, body)

    compute_q_points.__name__ = f"ComputeQ_points_{lo}_{hi}"
    return compute_q_points


def run_pomriq(rt: TargetRuntime, preset: str = "test") -> tuple[float, float]:
    """Run the workload; returns checksums of the real/imag Q vectors."""
    shape = SHAPES[preset]
    inputs = _sample_inputs(shape)
    arrays = {}
    with rt.at("file.c", 80, function="setupMemoryConstants"):
        for name, data in inputs.items():
            arrays[name] = rt.array(name, len(data), init=data)
    q_r = rt.array("q_r", shape.num_x)
    q_i = rt.array("q_i", shape.num_x)
    q_r.fill(0.0)
    q_i.fill(0.0)

    factory = make_q_point_kernel if preset == "large" else make_q_kernel
    maps = [to(a) for a in arrays.values()]
    with rt.target_data([*maps, *(from_(q) for q in (q_r, q_i))]):
        for lo in range(0, shape.num_x, shape.tile):
            hi = min(lo + shape.tile, shape.num_x)
            with rt.at("computeQ.c", 262, function="main"):
                rt.target(factory(shape, lo, hi), name="ComputeQ_GPU")
    with rt.at("main.c", 310, function="main"):
        sum_r = float(np.sum(q_r[0 : shape.num_x]))
        sum_i = float(np.sum(q_i[0 : shape.num_x]))
    return sum_r, sum_i
