"""552.pep: the NAS "embarrassingly parallel" (EP) benchmark.

Batches of pseudo-random pairs are generated and tested for acceptance into
Gaussian deviates; per-annulus counts are accumulated.  Parallelism is
trivial (independent batches, intra-kernel parallel for), transfers are
tiny relative to compute.  The paper singles 552.pep out in Fig. 9 as the
one benchmark where ARBALEST's memory behaviour diverged from Archer's; our
reproduction records both tools' shadow usage for that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..openmp import from_, release, to, tofrom
from ..openmp.arrays import KernelContext
from ..openmp.runtime import TargetRuntime


@dataclass(frozen=True)
class EpShape:
    batches: int
    batch_size: int


SHAPES = {
    "test": EpShape(4, 512),
    "train": EpShape(8, 1024),
    "ref": EpShape(16, 2048),
    "large": EpShape(6, 4096),
}

#: Linear congruential generator constants (the NAS EP flavor, 32-bit-ish).
_A = 1664525
_C = 1013904223
_M = 2**32


def _lcg_batch(seed: int, n: int) -> np.ndarray:
    """n uniform doubles in (0,1), deterministically from seed (vectorized
    via the closed form of the LCG would lose the modulus; a short Python
    loop over numpy blocks keeps it cheap)."""
    out = np.empty(n, dtype=np.float64)
    state = seed & (_M - 1)
    # Generate in chunks: numpy can't chain the recurrence, but 1 multiply
    # per element in a tight loop on ints is fast enough at these sizes.
    vals = np.empty(n, dtype=np.uint64)
    s = state
    for i in range(n):
        s = (_A * s + _C) % _M
        vals[i] = s
    out[:] = (vals + 0.5) / _M
    return out


def make_ep_kernel(batch: int, shape: EpShape):
    """One EP batch: accept pairs into Gaussian deviates, tally annuli."""

    def ep_batch(ctx: KernelContext) -> None:
        pairs = ctx["pairs"]
        counts = ctx["counts"]
        sums = ctx["sums"]
        n = shape.batch_size
        u = np.asarray(pairs[0 : 2 * n])
        x = 2.0 * u[:n] - 1.0
        y = 2.0 * u[n:] - 1.0
        t = x * x + y * y
        accept = (t <= 1.0) & (t > 0.0)
        factor = np.zeros_like(t)
        factor[accept] = np.sqrt(-2.0 * np.log(t[accept]) / t[accept])
        gx = x * factor
        gy = y * factor
        big = np.maximum(np.abs(gx), np.abs(gy))
        annulus = np.minimum(big.astype(np.int64), 9)
        hist = np.bincount(annulus[accept], minlength=10).astype(np.float64)
        counts[0:10] = np.asarray(counts[0:10]) + hist
        sums[0] = sums[0] + float(gx[accept].sum())
        sums[1] = sums[1] + float(gy[accept].sum())

    ep_batch.__name__ = f"ep_batch_{batch}"
    return ep_batch


def make_ep_point_kernel(batch: int, shape: EpShape):
    """'large'-preset kernel 1: one thread per pair, private outputs.

    Each logical thread reads its two uniforms and writes its own slots of
    the deviate arrays — no shared tallies, so the access stream is pure
    disjoint scalar traffic (what compiled EP inner loops do before the
    reduction).  Rejected pairs store 0.0, the neutral element.
    """
    import math

    def ep_points(ctx: KernelContext) -> None:
        pairs = ctx["pairs"]
        gx_out = ctx["gx"]
        gy_out = ctx["gy"]
        n = shape.batch_size

        def body(i: int) -> None:
            x = 2.0 * pairs[i] - 1.0
            y = 2.0 * pairs[n + i] - 1.0
            t = x * x + y * y
            if 0.0 < t <= 1.0:
                factor = math.sqrt(-2.0 * math.log(t) / t)
                gx_out[i] = x * factor
                gy_out[i] = y * factor
            else:
                gx_out[i] = 0.0
                gy_out[i] = 0.0

        ctx.parallel_for(n, body)

    ep_points.__name__ = f"ep_points_{batch}"
    return ep_points


def make_ep_tally_kernel(batch: int, shape: EpShape):
    """'large'-preset kernel 2: bulk reduction of the per-pair deviates."""

    def ep_tally(ctx: KernelContext) -> None:
        counts = ctx["counts"]
        sums = ctx["sums"]
        n = shape.batch_size
        gx = np.asarray(ctx["gx"][0:n])
        gy = np.asarray(ctx["gy"][0:n])
        # Accepted pairs have a nonzero deviate (t > 0 makes factor > 0).
        accept = (gx != 0.0) | (gy != 0.0)
        big = np.maximum(np.abs(gx), np.abs(gy))
        annulus = np.minimum(big.astype(np.int64), 9)
        hist = np.bincount(annulus[accept], minlength=10).astype(np.float64)
        counts[0:10] = np.asarray(counts[0:10]) + hist
        sums[0] = sums[0] + float(gx.sum())
        sums[1] = sums[1] + float(gy.sum())

    ep_tally.__name__ = f"ep_tally_{batch}"
    return ep_tally


def run_pep(rt: TargetRuntime, preset: str = "test") -> tuple[float, float]:
    """Run EP; returns (sum of X deviates, sum of Y deviates)."""
    shape = SHAPES[preset]
    counts = rt.array("counts", 10)
    sums = rt.array("sums", 2)
    counts.fill(0.0)
    sums.fill(0.0)
    pairs = rt.array("pairs", 2 * shape.batch_size)

    large = preset == "large"
    scratch = []
    if large:
        # Per-pair deviate arrays: device-resident between the point kernel
        # and its bulk reduction (the tally must see the kernel's stores).
        for name in ("gx", "gy"):
            arr = rt.array(name, shape.batch_size)
            arr.fill(0.0)
            scratch.append(arr)
    rt.target_enter_data([to(counts), to(sums), *(to(a) for a in scratch)])
    for b in range(shape.batches):
        with rt.at("ep.c", 150, function="main"):
            pairs[0 : 2 * shape.batch_size] = _lcg_batch(
                seed=2**16 + b, n=2 * shape.batch_size
            )
        with rt.at("ep.c", 172, function="main"):
            if large:
                rt.target(
                    make_ep_point_kernel(b, shape),
                    maps=[to(pairs)],
                    name="ep_points",
                )
                rt.target(make_ep_tally_kernel(b, shape), name="ep_tally")
            else:
                rt.target(
                    make_ep_kernel(b, shape),
                    maps=[to(pairs)],
                    name="ep_batch",
                )
    rt.target_exit_data(
        [from_(counts), from_(sums), *(release(a) for a in scratch)]
    )
    with rt.at("ep.c", 210, function="main"):
        sx = sums[0]
        sy = sums[1]
        total = float(np.sum(counts[0:10]))
    assert total > 0
    return float(sx), float(sy)
