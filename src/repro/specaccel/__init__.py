"""SPEC ACCEL-profile workloads for the overhead evaluation (§VI.E-F)."""

from .pcg import run_pcg
from .pep import run_pep
from .polbm import run_polbm
from .pomriq import run_pomriq
from .postencil import SHAPES as POSTENCIL_SHAPES
from .postencil import output_checksum, run_postencil
from .workloads import WORKLOADS, Workload, workload

__all__ = [
    "run_pcg",
    "run_pep",
    "run_polbm",
    "run_pomriq",
    "run_postencil",
    "output_checksum",
    "POSTENCIL_SHAPES",
    "WORKLOADS",
    "Workload",
    "workload",
]
