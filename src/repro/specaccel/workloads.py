"""The SPEC ACCEL workload registry used by the overhead harness (§VI.E/F)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..openmp.runtime import TargetRuntime
from .pcg import run_pcg
from .pep import run_pep
from .polbm import run_polbm
from .pomriq import run_pomriq
from .postencil import output_checksum, run_postencil


def _postencil_entry(rt: TargetRuntime, preset: str) -> float:
    # Overhead runs use the *fixed* program: the paper measures performance
    # on working benchmarks; the buggy variant is the §VI.D case study.
    result = run_postencil(rt, preset, buggy=False)
    return output_checksum(rt, result)


@dataclass(frozen=True)
class Workload:
    name: str
    spec_id: str
    run: Callable[[TargetRuntime, str], object]
    description: str


WORKLOADS: tuple[Workload, ...] = (
    Workload(
        "postencil",
        "503",
        _postencil_entry,
        "7-point 3-D Jacobi stencil, double-buffered",
    ),
    Workload("polbm", "504", run_polbm, "D2Q9 lattice-Boltzmann flow"),
    Workload("pomriq", "514", run_pomriq, "MRI Q-matrix (compute dense)"),
    Workload("pep", "552", run_pep, "NAS EP random-deviate tallies"),
    Workload("pcg", "554", run_pcg, "banded conjugate gradient (chatty)"),
)


def workload(name: str) -> Workload:
    """Look a workload up by short name ("pcg") or SPEC id ("554")."""
    for w in WORKLOADS:
        if w.name == name or w.spec_id == name:
            return w
    raise KeyError(f"unknown workload {name!r}")
