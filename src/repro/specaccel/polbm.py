"""504.polbm: lattice-Boltzmann flow (D2Q9, scaled down).

The SPEC original streams a 3-D D3Q19 lattice; the tool-overhead workload
here keeps its *instrumentation profile* — two large persistent mapped
arrays ping-ponged by a sequence of kernels, one collide-stream step per
iteration, with all data staying resident on the device between steps —
at a grid size that runs under five tools in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..openmp import from_, release, to
from ..openmp.arrays import KernelContext
from ..openmp.runtime import TargetRuntime

#: D2Q9 lattice: velocities and weights.
_EX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1])
_EY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1])
_W = np.array([4 / 9] + [1 / 9] * 4 + [1 / 36] * 4)
Q = 9
OMEGA = 1.2


@dataclass(frozen=True)
class LbmShape:
    nx: int
    ny: int
    iters: int

    @property
    def cells(self) -> int:
        return self.nx * self.ny

    @property
    def n(self) -> int:
        return self.cells * Q


SHAPES = {
    "test": LbmShape(8, 8, 3),
    "train": LbmShape(12, 12, 4),
    "ref": LbmShape(16, 16, 6),
    "large": LbmShape(20, 20, 4),
}


def _collide_stream(f: np.ndarray, shape: LbmShape) -> np.ndarray:
    """One BGK collide + periodic stream step on the flat distribution."""
    grid = f.reshape(Q, shape.nx, shape.ny)
    rho = grid.sum(axis=0)
    ux = np.tensordot(_EX, grid, axes=1) / np.maximum(rho, 1e-12)
    uy = np.tensordot(_EY, grid, axes=1) / np.maximum(rho, 1e-12)
    usq = ux * ux + uy * uy
    out = np.empty_like(grid)
    for q in range(Q):
        cu = _EX[q] * ux + _EY[q] * uy
        feq = _W[q] * rho * (1 + 3 * cu + 4.5 * cu * cu - 1.5 * usq)
        relaxed = grid[q] + OMEGA * (feq - grid[q])
        out[q] = np.roll(np.roll(relaxed, _EX[q], axis=0), _EY[q], axis=1)
    return out.ravel()


def make_lbm_kernel(src_name: str, dst_name: str, shape: LbmShape):
    """One collide+stream step from src distribution into dst."""

    def lbm_step(ctx: KernelContext) -> None:
        src, dst = ctx[src_name], ctx[dst_name]
        f = np.asarray(src[0 : shape.n])
        dst[0 : shape.n] = _collide_stream(f, shape)

    lbm_step.__name__ = f"lbm_step_{src_name}"
    return lbm_step


def make_moments_kernel(src_name: str, shape: LbmShape):
    """'large'-preset kernel 1: per-cell moments (rho, ux, uy), scalar I/O."""

    cells = shape.cells
    ex = _EX.tolist()
    ey = _EY.tolist()

    def lbm_moments(ctx: KernelContext) -> None:
        src = ctx[src_name]
        rho_a, ux_a, uy_a = ctx["rho"], ctx["ux"], ctx["uy"]

        def body(c: int) -> None:
            f = [src[q * cells + c] for q in range(Q)]
            rho = sum(f)
            denom = max(rho, 1e-12)
            rho_a[c] = rho
            ux_a[c] = sum(ex[q] * f[q] for q in range(Q)) / denom
            uy_a[c] = sum(ey[q] * f[q] for q in range(Q)) / denom

        ctx.parallel_for(cells, body)

    lbm_moments.__name__ = f"lbm_moments_{src_name}"
    return lbm_moments


def make_stream_kernel(src_name: str, dst_name: str, shape: LbmShape):
    """'large'-preset kernel 2: per-site BGK relax + periodic stream.

    Same arithmetic as :func:`_collide_stream`, one logical device thread
    per (direction, cell) site: four scalar loads, one scalar store.
    """
    nx, ny, cells = shape.nx, shape.ny, shape.cells
    ex = _EX.tolist()
    ey = _EY.tolist()
    w = _W.tolist()

    def lbm_stream(ctx: KernelContext) -> None:
        src, dst = ctx[src_name], ctx[dst_name]
        rho_a, ux_a, uy_a = ctx["rho"], ctx["ux"], ctx["uy"]

        def body(site: int) -> None:
            q, c = divmod(site, cells)
            ix, iy = divmod(c, ny)
            rho = rho_a[c]
            ux = ux_a[c]
            uy = uy_a[c]
            cu = ex[q] * ux + ey[q] * uy
            feq = w[q] * rho * (1 + 3 * cu + 4.5 * cu * cu - 1.5 * (ux * ux + uy * uy))
            f = src[site]
            relaxed = f + OMEGA * (feq - f)
            c2 = ((ix + ex[q]) % nx) * ny + (iy + ey[q]) % ny
            dst[q * cells + c2] = relaxed

        ctx.parallel_for(Q * cells, body)

    lbm_stream.__name__ = f"lbm_stream_{src_name}"
    return lbm_stream


def run_polbm(rt: TargetRuntime, preset: str = "test") -> float:
    """Run the workload; returns the final total density (a conserved sum)."""
    shape = SHAPES[preset]
    f0 = rt.array("f0", shape.n)
    f1 = rt.array("f1", shape.n)
    init = np.tile(_W, shape.cells).reshape(shape.cells, Q).T.ravel().copy()
    init[0] += 0.01  # a density perturbation to stir the flow
    with rt.at("lbm.c", 55, function="LBM_init"):
        f0[0 : shape.n] = init
        f1[0 : shape.n] = init

    large = preset == "large"
    scratch = []
    if large:
        # Device-resident moment fields for the element-wise kernel pair.
        for name in ("rho", "ux", "uy"):
            arr = rt.array(name, shape.cells)
            arr.fill(0.0)
            scratch.append(arr)
    rt.target_enter_data([to(f0), to(f1), *(to(a) for a in scratch)])
    src, dst = f0, f1
    for _t in range(shape.iters):
        with rt.at("lbm.c", 231, function="main"):
            if large:
                rt.target(make_moments_kernel(src.name, shape), name="lbm_moments")
                rt.target(
                    make_stream_kernel(src.name, dst.name, shape), name="lbm_stream"
                )
            else:
                rt.target(make_lbm_kernel(src.name, dst.name, shape), name="lbm_step")
        src, dst = dst, src
    rt.target_update(from_=[src])
    rt.target_exit_data([release(f0), release(f1), *(release(a) for a in scratch)])
    with rt.at("lbm.c", 250, function="LBM_showGridStatistics"):
        values = src[0 : shape.n]
    return float(np.sum(values))
