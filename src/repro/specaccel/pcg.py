"""554.pcg: preconditioned conjugate gradient on a banded SPD system.

CG has the most host↔device chatter of the five workloads: the matrix and
vectors live on the device, but every iteration moves scalars and vectors
through ``target update`` for the host-side dot products and convergence
test.  This makes it the data-op-heaviest entry in the overhead figures —
the profile where ARBALEST's mapping bookkeeping gets exercised hardest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..openmp import release, to, tofrom
from ..openmp.arrays import KernelContext
from ..openmp.runtime import TargetRuntime


@dataclass(frozen=True)
class PcgShape:
    n: int
    bandwidth: int
    iters: int


SHAPES = {
    "test": PcgShape(64, 2, 8),
    "train": PcgShape(128, 3, 12),
    "ref": PcgShape(256, 4, 16),
    "large": PcgShape(256, 4, 10),
}


def _banded_matrix(shape: PcgShape) -> np.ndarray:
    """A dense representation of a banded SPD matrix (diagonally dominant)."""
    n, bw = shape.n, shape.bandwidth
    m = np.zeros((n, n))
    for off in range(1, bw + 1):
        band = -1.0 / off
        m += np.diag(np.full(n - off, band), off)
        m += np.diag(np.full(n - off, band), -off)
    m += np.diag(np.full(n, 2.0 * bw + 1.0))
    return m


def make_matvec(n: int):
    """The device mat-vec kernel: Ap = A @ p."""

    def matvec(ctx: KernelContext) -> None:
        a = np.asarray(ctx["A"][0 : n * n]).reshape(n, n)
        p = np.asarray(ctx["p"][0:n])
        ctx["Ap"][0:n] = a @ p

    return matvec


def make_axpy(dst: str, xname: str, yname: str, alpha: float, n: int):
    """A device axpy kernel: dst = x + alpha * y."""

    def axpy(ctx: KernelContext) -> None:
        x = np.asarray(ctx[xname][0:n])
        y = np.asarray(ctx[yname][0:n])
        ctx[dst][0:n] = x + alpha * y

    axpy.__name__ = f"axpy_{dst}"
    return axpy


def make_axpy_points(dst: str, xname: str, yname: str, alpha: float, n: int):
    """Element-wise twin of :func:`make_axpy` ('large' preset).

    One logical device thread per element: two scalar loads, one scalar
    store — the vector-update access profile a compiled CG kernel has.
    """

    def axpy_points(ctx: KernelContext) -> None:
        x = ctx[xname]
        y = ctx[yname]
        d = ctx[dst]

        def body(i: int) -> None:
            d[i] = x[i] + alpha * y[i]

        ctx.parallel_for(n, body)

    axpy_points.__name__ = f"axpy_points_{dst}"
    return axpy_points


def run_pcg(rt: TargetRuntime, preset: str = "test") -> float:
    """Run CG for a fixed iteration budget; returns the final residual norm."""
    shape = SHAPES[preset]
    n = shape.n
    matrix = _banded_matrix(shape)
    rng = np.random.default_rng(554)
    b_host = rng.uniform(-1, 1, n)

    A = rt.array("A", n * n, init=matrix.ravel())
    x = rt.array("x", n, init=np.zeros(n))
    r = rt.array("r", n, init=b_host)  # r0 = b - A*0 = b
    p = rt.array("p", n, init=b_host)
    ap = rt.array("Ap", n, init=np.zeros(n))

    axpy_factory = make_axpy_points if preset == "large" else make_axpy
    rt.target_enter_data([to(A), to(x), to(r), to(p), to(ap)])
    with rt.at("cg.c", 88, function="conj_grad"):
        rsold = float(np.dot(b_host, b_host))
    residual = np.sqrt(rsold)
    for _it in range(shape.iters):
        rt.target(make_matvec(n), name="matvec")
        # Host-side dot products: pull the freshly computed vectors.
        rt.target_update(from_=[ap, p])
        with rt.at("cg.c", 97, function="conj_grad"):
            p_host = np.asarray(p[0:n])
            ap_host = np.asarray(ap[0:n])
        alpha = rsold / float(np.dot(p_host, ap_host))
        rt.target(axpy_factory("x", "x", "p", alpha, n), name="update_x")
        rt.target(axpy_factory("r", "r", "Ap", -alpha, n), name="update_r")
        rt.target_update(from_=[r])
        with rt.at("cg.c", 104, function="conj_grad"):
            r_host = np.asarray(r[0:n])
        rsnew = float(np.dot(r_host, r_host))
        beta = rsnew / rsold
        rt.target(axpy_factory("p", "r", "p", beta, n), name="update_p")
        rsold = rsnew
        residual = np.sqrt(rsnew)
    rt.target_update(from_=[x])
    rt.target_exit_data([release(A), release(x), release(r), release(p), release(ap)])
    with rt.at("cg.c", 120, function="main"):
        _ = x[0:n]
    return residual
