"""Kokkos front-end: views, mirrors, deep_copy, DualView (§VIII future work).

Kokkos expresses host↔device data movement with *views* and explicit
``deep_copy`` between a device view and its host mirror; forgetting a
``deep_copy`` after modifying one side is precisely a data mapping issue.
This facade maps the Kokkos idioms onto the simulated runtime so ARBALEST
(and every other tool) checks Kokkos-style programs unchanged:

* ``View``              — device-resident array, permanently mapped
  (``target enter data map(alloc:)``; Kokkos device allocations are not
  host-initialized);
* ``create_mirror_view``— the host-side storage (our original variable);
* ``deep_copy(dst,src)``— ``target update`` in the matching direction;
* ``parallel_for``      — a target region over the view's extent;
* ``DualView``          — Kokkos's *manual* answer to the consistency
  problem: the programmer calls ``modify()``/``sync()`` and Kokkos keeps a
  dirty flag per side.  That protocol is a hand-maintained two-state
  version of the paper's VSM, which makes the contrast concrete: with
  ARBALEST attached, a *forgotten* ``modify()`` (so ``sync()`` skips the
  transfer) is still caught, because the detector tracks what actually
  happened rather than what the programmer declared.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..openmp.arrays import HostArray, KernelContext
from ..openmp.maptypes import MapSpec, MapType
from ..openmp.runtime import Machine, TargetRuntime


class View:
    """A device-resident Kokkos view backed by a mapped host array.

    The host array is the mirror's storage; the device copy is created at
    construction (``alloc``: device memory starts uninitialized, exactly
    like ``Kokkos::View`` without an initializing execution policy).
    """

    def __init__(self, kokkos: "KokkosRuntime", label: str, extent: int, device: int):
        self.kokkos = kokkos
        self.label = label
        self.extent = extent
        self.device = device
        self.host_array: HostArray = kokkos.omp.array(label, extent)
        kokkos.omp.target_enter_data(
            [MapSpec(self.host_array, MapType.ALLOC)], device=device
        )

    def mirror(self) -> HostArray:
        """``create_mirror_view``: the host-side accessor."""
        return self.host_array


class DualView:
    """``Kokkos::DualView``: a view plus programmer-maintained dirty flags.

    ``modify('host'|'device')`` marks a side dirty; ``sync(side)`` performs
    the transfer *only if the other side was marked modified* — faithfully
    reproducing the footgun that the flags describe intent, not reality.
    """

    def __init__(self, kokkos: "KokkosRuntime", label: str, extent: int, device: int):
        self.view = View(kokkos, label, extent, device)
        self._modified: str | None = None

    @property
    def host(self) -> HostArray:
        return self.view.host_array

    def modify(self, side: str) -> None:
        if side not in ("host", "device"):
            raise ValueError(f"side must be 'host' or 'device', got {side!r}")
        self._modified = side

    def sync(self, side: str) -> bool:
        """Make ``side`` current; returns whether a transfer happened."""
        if side not in ("host", "device"):
            raise ValueError(f"side must be 'host' or 'device', got {side!r}")
        omp = self.view.kokkos.omp
        if side == "device" and self._modified == "host":
            omp.target_update(to=[self.host], device=self.view.device)
            self._modified = None
            return True
        if side == "host" and self._modified == "device":
            omp.target_update(from_=[self.host], device=self.view.device)
            self._modified = None
            return True
        return False  # flags say nothing to do — even if reality disagrees


class KokkosRuntime:
    """Kokkos-style programming over the simulated machine."""

    def __init__(self, machine: Machine | None = None, **machine_kwargs):
        self.omp = TargetRuntime(machine, **machine_kwargs)

    @property
    def machine(self) -> Machine:
        return self.omp.machine

    def view(self, label: str, extent: int, *, device: int = 1) -> View:
        return View(self, label, extent, device)

    def dual_view(self, label: str, extent: int, *, device: int = 1) -> DualView:
        return DualView(self, label, extent, device)

    def deep_copy(self, dst, src) -> None:
        """``Kokkos::deep_copy`` between a view and its mirror (either way)."""
        if isinstance(dst, View) and isinstance(src, HostArray):
            if src is not dst.host_array:
                raise ValueError("deep_copy partner must be the view's mirror")
            self.omp.target_update(to=[src], device=dst.device)
        elif isinstance(dst, HostArray) and isinstance(src, View):
            if dst is not src.host_array:
                raise ValueError("deep_copy partner must be the view's mirror")
            self.omp.target_update(from_=[dst], device=src.device)
        else:
            raise TypeError("deep_copy expects (View, mirror) or (mirror, View)")

    def parallel_for(
        self,
        label: str,
        extent: int,
        functor: Callable[[KernelContext, int], None],
        *,
        views: tuple[View, ...] = (),
        device: int = 1,
    ) -> None:
        """``Kokkos::parallel_for``: run ``functor(ctx, i)`` on the device."""

        def kernel(ctx: KernelContext) -> None:
            for i in range(extent):
                functor(ctx, i)

        kernel.__name__ = label
        self.omp.target(kernel, device=device, name=label)

    def fence(self) -> None:
        """``Kokkos::fence``."""
        self.omp.taskwait()

    def finalize(self) -> None:
        self.omp.finalize()
