"""Kokkos front-end over the simulated runtime (§VIII future work)."""

from .facade import DualView, KokkosRuntime, View

__all__ = ["KokkosRuntime", "View", "DualView"]
