"""Tracking one variable across several accelerators (§IV.C).

With n accelerators the variable state generalizes from Figure 4's four
states to an (n+1)-tuple of per-location validity bits.
:class:`MultiDeviceArbalest` implements exactly that; this example builds a
two-GPU pipeline where device 2 keeps computing on a snapshot that device 1
has since made stale, and shows the detector attributing the stale read to
the right device.

Run:  python examples/multi_device.py
"""

from repro import MultiDeviceArbalest, TargetRuntime, to, tofrom

N = 16

rt = TargetRuntime(n_devices=2)
detector = MultiDeviceArbalest().attach(rt.machine)

data = rt.array("data", N)
data.fill(1.0)

# Device 2 takes an early snapshot of the data...
rt.target_enter_data([to(data)], device=2)

# ...then device 1 computes a new version and copies it back to the host.
rt.target(
    lambda ctx: [ctx["data"].write(i, 2.0) for i in range(N)],
    maps=[tofrom(data)],
    device=1,
    name="produce_v2",
)
print(f"host now sees data[0] = {data[0]} (device 1's result)")

# Device 2's corresponding variable still holds the old snapshot; a kernel
# reading it consumes stale data.
observed = []
rt.target(
    lambda ctx: observed.append(ctx["data"][0]),
    device=2,
    name="consume_snapshot",
)
rt.finalize()

print(f"device 2 observed data[0] = {observed[0]}  (stale snapshot!)")
for finding in detector.mapping_issue_findings():
    print(" *", finding.render())

assert observed == [1.0]
stale = detector.mapping_issue_findings()
assert stale and stale[0].device_id == 2
print("\nOK: the multi-device VSM attributed the stale read to device 2.")

# The fix: refresh device 2 before the second kernel.
rt2 = TargetRuntime(n_devices=2)
det2 = MultiDeviceArbalest().attach(rt2.machine)
d2 = rt2.array("data", N)
d2.fill(1.0)
rt2.target_enter_data([to(d2)], device=2)
rt2.target(
    lambda ctx: [ctx["data"].write(i, 2.0) for i in range(N)],
    maps=[tofrom(d2)],
    device=1,
)
rt2.target_update(to=[d2], device=2)  # push the fresh host copy to device 2
seen = []
rt2.target(lambda ctx: seen.append(ctx["data"][0]), device=2)
rt2.finalize()
assert seen == [2.0] and not det2.mapping_issue_findings()
print("OK: after target update device(2), the pipeline is clean.")
