"""Theorem-1 certification of asynchronous offloading (paper §IV.E).

A single VSM run only examines one schedule of the nowait kernels; a bug
may hide in the schedules you didn't observe.  Theorem 1 gives the sound
check: data-race freedom + a clean VSM run with every nowait downgraded to
synchronous certify the program for *all* schedules.

This example certifies three variants of the paper's Figure-2 program:

1. the buggy original (nowait kernel racing the host increment),
2. a misfixed version (taskwait added, but the host still reads the stale
   original variable), and
3. the correct fix (taskwait + target update in both directions).

Run:  python examples/async_certification.py
"""

from repro import Schedule, certify, tofrom


def buggy(rt):
    """Fig. 2 lines 7-16 verbatim."""
    a = rt.array("a", 1)
    a[0] = 1.0
    with rt.target_data([tofrom(a)]):
        rt.target(lambda ctx: ctx["a"].write(0, 3.0), nowait=True, name="set3")
        a.write(0, a.read(0) + 1)  # races with the kernel and the exit copy
    _ = a[0]


def misfixed(rt):
    """taskwait removes the race, but the host read is still stale."""
    a = rt.array("a", 1)
    a[0] = 1.0
    with rt.target_data([tofrom(a)]):
        rt.target(lambda ctx: ctx["a"].write(0, 3.0), nowait=True, name="set3")
        rt.taskwait()
        a.write(0, a.read(0) + 1)  # reads OV: the kernel wrote the CV only
    _ = a[0]


def fixed(rt):
    """Synchronize the task *and* the data."""
    a = rt.array("a", 1)
    a[0] = 1.0
    with rt.target_data([tofrom(a)]):
        rt.target(lambda ctx: ctx["a"].write(0, 3.0), nowait=True, name="set3")
        rt.taskwait()
        rt.target_update(from_=[a])
        a.write(0, a.read(0) + 1)
        rt.target_update(to=[a])
    assert a[0] == 4.0


for name, program in (("buggy", buggy), ("misfixed", misfixed), ("fixed", fixed)):
    cert = certify(program)
    verdict = "CERTIFIED" if cert.certified else "REJECTED"
    print(f"{name:>9}: {verdict} — {cert.explain()}")

# Certification is schedule-independent: the buggy program is rejected no
# matter which interleaving the observing run happens to execute.
for schedule in (Schedule.EAGER, Schedule.DEFER_KERNEL_FIRST, Schedule.DEFER_HOST_FIRST):
    assert not certify(buggy, schedule=schedule).certified
assert not certify(misfixed).certified
assert certify(fixed).certified
print("\nOK: Theorem-1 certification behaves as §IV.E describes.")
