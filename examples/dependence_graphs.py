"""Figure 3: dynamic data dependence graphs of the Fig-2 program.

The paper explains the nondeterministic outcome of Figure 2 by drawing the
dataflow graph of each probable interleaving (Figure 3).  This example
records the event trace of the Fig-2 program under two schedules, builds
both dependence graphs, and prints them side by side — the provenance of
the final read shows which write "won" in each interleaving.

Run:  python examples/dependence_graphs.py
"""

import io

from repro import Schedule, TargetRuntime, tofrom
from repro.analysis import build_ddg
from repro.events import TraceWriter, read_trace


def fig2(rt):
    a = rt.array("a", 1)
    with rt.at("fig2.c", 1):
        a[0] = 1.0
    with rt.target_data([tofrom(a)]):
        with rt.at("fig2.c", 11):
            rt.target(lambda ctx: ctx["a"].write(0, 3.0), nowait=True, name="set3")
        with rt.at("fig2.c", 13):
            a.write(0, a.read(0) + 1)
    with rt.at("fig2.c", 16):
        return a[0]


def record(schedule):
    rt = TargetRuntime(n_devices=1, schedule=schedule)
    sink = io.StringIO()
    TraceWriter(sink).attach(rt.machine)
    value = fig2(rt)
    rt.finalize()
    sink.seek(0)
    return build_ddg(read_trace(sink)), value


for schedule in (Schedule.EAGER, Schedule.DEFER_HOST_FIRST):
    ddg, value = record(schedule)
    print(f"=== schedule: {schedule.value}  ->  final a == {value} ===")
    print(ddg.render_ascii(variable="a"))
    final_read = ddg.reads()[-1]
    winners = [
        n.label for n in ddg.value_provenance(final_read) if n.kind == "write"
    ]
    print(f"writes reaching the final read: {winners}")
    print()

eager, v1 = record(Schedule.EAGER)
host_first, v2 = record(Schedule.DEFER_HOST_FIRST)
assert v1 != v2, "the Fig-2 nondeterminism must be observable"
assert eager.signature() != host_first.signature()
print("OK: the two interleavings produce different dependence graphs "
      "and different results, as Figure 3 illustrates.")
