"""The VSM applied to MPI one-sided communication (paper §VII.B).

The paper observes that OpenMP data mapping issues are one instance of a
broader class — data consistency issues — and that the same state-machine
algorithm applies to MPI-3 RMA under its separate memory model, where each
window has a *private* copy (local loads/stores) and a *public* copy
(remote PUT/GET), reconciled only at synchronization.

This example runs a two-rank halo exchange twice: once correctly fenced,
once with the second fence forgotten.  The checker — literally the Fig-4
state machine with private=OV, public=CV — flags the stale halo reads.

Run:  python examples/mpi_consistency.py
"""

from repro.mpi import MpiConsistencyChecker, MpiWorld

N = 8


def halo_exchange(forget_fence: bool):
    world = MpiWorld(2)
    checker = MpiConsistencyChecker(world)
    wid = world.win_allocate(N)

    # Each rank computes its interior.
    for rank in (0, 1):
        for i in range(1, N - 1):
            world.store(rank, wid, i, float(rank * 10 + i))
    world.fence(wid)  # expose the interiors

    # Exchange edges into the neighbour's halo cells.
    world.put(origin=0, wid=wid, target=1, index=0,
              value=world.get(0, wid, 0, N - 2))
    world.put(origin=1, wid=wid, target=0, index=N - 1,
              value=world.get(1, wid, 1, 1))
    if not forget_fence:
        world.fence(wid)  # make the PUTs visible to local loads

    halo0 = world.load(0, wid, N - 1)
    halo1 = world.load(1, wid, 0)
    return checker, halo0, halo1


print("correct halo exchange (both fences present)")
checker, h0, h1 = halo_exchange(forget_fence=False)
print(f"  rank 0 halo = {h0}, rank 1 halo = {h1}")
print(f"  checker: {checker.render()}")
assert not checker.issues and (h0, h1) == (11.0, 6.0)

print("\nbuggy halo exchange (second fence forgotten)")
checker, h0, h1 = halo_exchange(forget_fence=True)
print(f"  rank 0 halo = {h0}, rank 1 halo = {h1}   <- stale zeros!")
for issue in checker.issues:
    print("  *", issue.render())
assert checker.stale_issues() and (h0, h1) == (0.0, 0.0)

print("\nOK: the VSM pinpointed the MPI consistency bug, as §VII.B suggests.")
