"""Unified memory does not make data mapping issues impossible (§III.B).

Two experiments on a unified-memory machine (CV and OV share storage):

1. A classic map-type bug (``to`` instead of ``tofrom``) is *not* an issue
   under unified memory: there is only one storage location, so the host
   sees the kernel's update with no copy-back.  ARBALEST stays silent —
   and also shows the same program IS buggy on a separate-memory machine.

2. Concurrency still bites: a host write racing an asynchronous kernel on
   the same (shared) location has no defined visibility order without a
   flush/synchronization.  ARBALEST's embedded race detection reports it.

Run:  python examples/unified_memory.py
"""

from repro import Arbalest, TargetRuntime, to, tofrom


def map_type_bug(rt):
    a = rt.array("a", 8)
    a.fill(1.0)
    rt.target(lambda ctx: ctx["a"].fill(2.0), maps=[to(a)], name="scale")
    return a


# -- experiment 1: the same program on both memory models -------------------

print("map(to:) bug where tofrom was intended")
for unified in (False, True):
    rt = TargetRuntime(n_devices=1, unified=unified)
    detector = Arbalest().attach(rt.machine)
    a = map_type_bug(rt)
    value = a[0]
    rt.finalize()
    issues = detector.mapping_issue_findings()
    model = "unified " if unified else "separate"
    print(f"  {model} memory: host reads a[0] = {value}, issues = {len(issues)}")
    if unified:
        assert value == 2.0 and not issues  # single storage: update visible
    else:
        assert value == 1.0 and issues  # stale read, reported

# -- experiment 2: races survive unification --------------------------------

print("\nunsynchronized host write racing a nowait kernel (unified memory)")
rt = TargetRuntime(n_devices=1, unified=True)
detector = Arbalest().attach(rt.machine)
x = rt.array("x", 1)
x.fill(0.0)
rt.target(lambda ctx: ctx["x"].write(0, 1.0), maps=[tofrom(x)], nowait=True)
x.write(0, 2.0)  # no taskwait, no flush: unordered with the kernel write
rt.taskwait()
rt.finalize()
races = detector.race_findings()
print(f"  race reports: {len(races)}")
for f in races:
    print("   *", f.render())
assert races, "the unified-memory race must be reported"
print("\nOK: unified memory removed the staleness but not the race.")
