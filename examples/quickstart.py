"""Quickstart: detect the paper's Figure-1 bug in ~30 lines.

The program offloads a matrix-vector product but maps the matrix ``b``
with ``map(alloc:)`` instead of ``map(to:)`` — the corresponding variable
is allocated on the accelerator but never filled, so the kernel computes
on garbage.  ARBALEST reports the use of uninitialized memory at the
offending read, with the mapped section and the allocation site.

Run:  python examples/quickstart.py
"""

from repro import Arbalest, TargetRuntime, alloc, to, tofrom

N = 50

# A machine with one accelerator, and ARBALEST attached to its tool bus.
rt = TargetRuntime(n_devices=1)
arbalest = Arbalest().attach(rt.machine)

# int a[N], b[N*N], c[N];  init(a, b, c);
with rt.at("fig1.c", 2, function="main"):
    a = rt.array("a", N)
    b = rt.array("b", N * N)
    c = rt.array("c", N)
with rt.at("fig1.c", 5, function="main"):
    a.fill(1.0)
    b.fill(2.0)
    c.fill(0.0)


def matvec(ctx):
    """The target region (fig1.c lines 11-17)."""
    A, B, C = ctx["a"], ctx["b"], ctx["c"]
    for i in range(N):
        acc = C[i]
        for j in range(N):
            acc += B[j + i * N] * A[j]  # line 16: reads b's garbage CV
        C[i] = acc


with rt.at("fig1.c", 16, function="main"):
    rt.target(
        matvec,
        maps=[
            to(a),        # map(to: a[0:N])
            alloc(b),     # map(alloc: b[0:N*N])  <- should be map(to:)
            tofrom(c),    # map(tofrom: c[0:N])
        ],
    )
rt.finalize()

print(f"findings: {len(arbalest.mapping_issue_findings())}")
for finding in arbalest.mapping_issue_findings():
    print(" *", finding.render())

print()
print(arbalest.render_reports())

assert arbalest.mapping_issue_findings(), "the Fig-1 bug must be detected"
print("\nOK: ARBALEST detected the Figure-1 data mapping issue.")
