"""Online repair of data mapping issues (paper §III.C).

§III.C sketches how an OpenMP implementation with an integrated analysis
module could *repair* a detected issue: for stale data, perform the missing
transfer at runtime; for races, suggest depend clauses; uninitialized reads
only get diagnostics (no valid value exists to transfer).

`RepairingArbalest` does exactly that.  This example runs the same buggy
program twice — plain detection vs detection-plus-repair — and shows that
the repaired run computes the intended result while still reporting the bug
and naming the directive the programmer should add.

Run:  python examples/self_healing.py
"""

from repro import Arbalest, RepairingArbalest, TargetRuntime, to

N = 8


def buggy_program(rt):
    """map(to:) where tofrom was intended: the kernel's result never
    reaches the host."""
    a = rt.array("a", N)
    a.fill(1.0)
    with rt.at("app.c", 31, function="main"):
        rt.target(lambda ctx: ctx["a"].fill(2.0), maps=[to(a)], name="double")
    with rt.at("app.c", 35, function="main"):
        value = a[0]
    return value


print("plain ARBALEST (detection only)")
rt = TargetRuntime(n_devices=1)
detector = Arbalest().attach(rt.machine)
value = buggy_program(rt)
rt.finalize()
print(f"  host observed a[0] = {value}   <- stale (the kernel wrote 2.0)")
print(f"  findings: {[f.kind.name for f in detector.mapping_issue_findings()]}")
assert value == 1.0

print("\nRepairingArbalest (detection + §III.C repair)")
rt2 = TargetRuntime(n_devices=1)
repairer = RepairingArbalest().attach(rt2.machine)
value2 = buggy_program(rt2)
rt2.finalize()
print(f"  host observed a[0] = {value2}   <- the intended result")
print(f"  findings: {[f.kind.name for f in repairer.mapping_issue_findings()]}")
print("  interventions:")
for action in repairer.repairs:
    print("   ", action.render())
assert value2 == 2.0
assert repairer.mapping_issue_findings(), "repair must not hide the bug"
assert repairer.transfers_performed()

print("\nOK: the repaired run computed the intended value and still "
      "reported the bug with a fix suggestion.")
