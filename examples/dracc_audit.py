"""Audit the whole DRACC suite with all five tools (Table III, live).

Regenerates the paper's precision comparison and prints the per-benchmark
detail: which tool flagged what on each of the 56 benchmarks, plus the
Table III summary and a check against the published numbers.

Run:  python examples/dracc_audit.py [--verbose]
"""

import sys

from repro.dracc import all_benchmarks
from repro.harness import TOOL_ORDER, run_precision_comparison

verbose = "--verbose" in sys.argv

result = run_precision_comparison()

if verbose:
    header = f"{'benchmark':<16} {'effect':<6} " + " ".join(
        f"{t:>9}" for t in TOOL_ORDER
    )
    print(header)
    print("-" * len(header))
    for r in result.results:
        b = r.benchmark
        effect = b.expected_effect.name if b.expected_effect else "-"
        marks = " ".join(
            f"{'DETECT' if r.detected[t] else '.':>9}" for t in TOOL_ORDER
        )
        print(f"{b.name:<16} {effect:<6} {marks}")
    print()

print(result.render())
print()

expected = {"arbalest": 16, "valgrind": 6, "archer": 0, "asan": 6, "msan": 5}
for tool, want in expected.items():
    got, total = result.score(tool)
    status = "ok" if got == want else f"MISMATCH (paper says {want})"
    print(f"  {tool:>9}: {got}/{total}  {status}")

assert result.matches_paper(), "regenerated table must equal Table III"
print("\nOK: Table III reproduced exactly.")
