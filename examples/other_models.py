"""ARBALEST on other programming models (paper §VIII future work).

"We also plan to extend ARBALEST further to support other accelerator
programming models, such as OpenACC and Kokkos."  Because the detector
consumes the runtime's event stream rather than directive syntax, the
extension is a front-end per model:

* OpenACC: ``copyin`` where ``copy`` was needed is the same stale-host bug
  as OpenMP's ``map(to:)`` — detected identically;
* Kokkos: a ``DualView`` whose ``modify()`` call was forgotten silently
  skips its ``sync()`` transfer — the flags say "consistent", the actual
  memory disagrees, and the detector catches the kernel's stale read.

Run:  python examples/other_models.py
"""

from repro import Arbalest
from repro.kokkos import KokkosRuntime
from repro.openacc import AccRuntime

# -- OpenACC -----------------------------------------------------------------

print("OpenACC: copyin(a) where copy(a) was intended")
acc = AccRuntime(n_devices=1)
detector = Arbalest().attach(acc.machine)
a = acc.array("a", 8)
a.fill(1.0)
acc.parallel(lambda ctx: ctx["a"].fill(2.0), copyin=[a])  # result dropped
value = a[0]
acc.finalize()
print(f"  host sees a[0] = {value} (kernel wrote 2.0)")
for finding in detector.mapping_issue_findings():
    print("  *", finding.render())
assert value == 1.0 and detector.mapping_issue_findings()

# -- Kokkos --------------------------------------------------------------------

print("\nKokkos: DualView with a forgotten modify('host')")
kokkos = KokkosRuntime(n_devices=1)
detector2 = Arbalest().attach(kokkos.machine)
field = kokkos.dual_view("field", 8)
field.host.fill(1.0)
field.modify("host")
field.sync("device")  # first sync transfers correctly

field.host.fill(9.0)  # host refresh ... but modify('host') is forgotten
transferred = field.sync("device")  # flags see nothing to do
print(f"  sync('device') transferred: {transferred}")

seen = []
kokkos.parallel_for("consume", 1, lambda ctx, i: seen.append(ctx["field"][0]))
kokkos.finalize()
print(f"  kernel observed field[0] = {seen[0]} (host holds 9.0)")
for finding in detector2.mapping_issue_findings():
    print("  *", finding.render())
assert not transferred and seen == [1.0]
assert detector2.mapping_issue_findings()

print("\nOK: both front-ends feed the same detector; both bugs caught.")
