"""The 503.postencil case study (paper §VI.D, Figures 6 and 7).

SPEC ACCEL 1.2's stencil benchmark swaps its double-buffer pointers on the
host after every kernel launch; after an odd number of iterations the
result physically lives in the scratch buffer's corresponding variable,
which the data region never copies back.  ARBALEST flags the output loop's
stale read exactly as Figure 7 shows.

Run:  python examples/postencil_casestudy.py [preset]
      preset in {test, train, ref}; default test
"""

import sys

from repro.harness import run_case_study

preset = sys.argv[1] if len(sys.argv) > 1 else "test"
result = run_case_study(preset=preset)
print(result.render())

assert result.reproduced, "the case study must reproduce Fig. 7"
print("\nOK: stale access detected on v1.2, fixed version is clean.")
